"""Batch samplers: default sharding vs the load-balance sampler (Fig. 4).

With large global batches across many GPUs, per-rank workloads diverge
because structure sizes follow a long-tail distribution (Fig. 5).  The
paper's sampler sorts the global batch by total feature number
(atoms + bonds + angles) and lets each rank take the smallest and largest
remaining samples in turn, cutting the coefficient of variation of per-rank
work from 0.186 to 0.064 (Fig. 9).

:class:`BucketBatchSampler` composes that load balancing with the padding
tiers of the compile-once training step: global batches become fixed
contiguous blocks of the size-sorted dataset (epochs shuffle the *order* of
blocks), every block's rank shards are fixed by the greedy pairing, and —
given per-sample graph dims — each shard is assigned a canonical padded
target shared by its whole workload tier.  Shard shapes are then static
across epochs, which is what lets compiled per-rank steps replay from the
first epoch on with one program per tier.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.batching import canonical_targets, workload_tier


def coefficient_of_variation(values: np.ndarray) -> float:
    """std / mean — the paper's load-imbalance criterion."""
    values = np.asarray(values, dtype=np.float64)
    m = values.mean()
    if m == 0:
        return 0.0
    return float(values.std() / m)


class BatchSampler:
    """Base sampler: shuffled global batches of indices.

    Subclasses override :meth:`partition` to assign a global batch's samples
    to ranks.
    """

    def __init__(
        self,
        feature_numbers: np.ndarray,
        global_batch_size: int,
        world_size: int = 1,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if global_batch_size < world_size:
            raise ValueError(
                f"global batch {global_batch_size} smaller than world size {world_size}"
            )
        if global_batch_size % world_size != 0:
            raise ValueError(
                f"global batch {global_batch_size} not divisible by world size {world_size}"
            )
        self.feature_numbers = np.asarray(feature_numbers)
        self.n = len(self.feature_numbers)
        self.global_batch_size = global_batch_size
        self.world_size = world_size
        self.seed = seed
        self.drop_last = drop_last

    def global_batches(self, epoch: int = 0) -> Iterator[np.ndarray]:
        """Yield shuffled index arrays of size ``global_batch_size``."""
        rng = np.random.default_rng((self.seed, epoch))
        order = rng.permutation(self.n)
        for lo in range(0, self.n, self.global_batch_size):
            chunk = order[lo : lo + self.global_batch_size]
            if len(chunk) < self.global_batch_size:
                if self.drop_last:
                    return
                if len(chunk) < self.world_size:
                    return
                chunk = chunk[: len(chunk) - (len(chunk) % self.world_size)]
            yield chunk

    def num_batches(self) -> int:
        """Global batches yielded per epoch (matches :meth:`global_batches`)."""
        full = self.n // self.global_batch_size
        rem = self.n % self.global_batch_size
        if not self.drop_last and rem >= self.world_size:
            return full + 1
        return full

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        """Assign one global batch's indices to ``world_size`` ranks."""
        raise NotImplementedError

    def epoch_partitions(self, epoch: int = 0) -> Iterator[list[np.ndarray]]:
        """Per-iteration rank assignments for a full epoch."""
        for batch in self.global_batches(epoch):
            yield self.partition(batch)

    def rank_loads(self, shards: list[np.ndarray]) -> np.ndarray:
        """Total feature number per rank for one iteration."""
        return np.array([self.feature_numbers[s].sum() for s in shards], dtype=np.float64)


class DefaultSampler(BatchSampler):
    """Reference sharding: contiguous equal-count slices of the shuffled batch."""

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        return [np.asarray(s) for s in np.array_split(batch_indices, self.world_size)]


class LoadBalanceSampler(BatchSampler):
    """The paper's greedy smallest+largest pairing (Section III-C, Fig. 4).

    Samples are sorted by feature number ascending; ranks take turns
    claiming the (smallest, largest) pair of the remaining pool until the
    batch is exhausted.  Every rank receives the same *count* of samples
    with near-equal total work.
    """

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        batch_indices = np.asarray(batch_indices)
        order = np.argsort(self.feature_numbers[batch_indices], kind="stable")
        sorted_idx = batch_indices[order]
        shards: list[list[int]] = [[] for _ in range(self.world_size)]
        lo, hi = 0, len(sorted_idx) - 1
        rank = 0
        while lo <= hi:
            shards[rank].append(int(sorted_idx[lo]))
            lo += 1
            if lo <= hi:
                shards[rank].append(int(sorted_idx[hi]))
                hi -= 1
            rank = (rank + 1) % self.world_size
        return [np.array(s, dtype=np.int64) for s in shards]


class BucketBatchSampler(LoadBalanceSampler):
    """Fig. 9 load balancing composed with padding-tier awareness.

    Global batches are contiguous **blocks of the size-sorted dataset**, so
    every block holds similarly-sized structures; an epoch shuffles the
    order in which blocks are visited (every sample still appears exactly
    once per epoch).  Each block's rank shards are fixed once by the greedy
    smallest+largest pairing — per-rank assignment within a global batch
    does not affect the averaged gradient, so only the block *composition*
    matters to SGD, exactly the size-bucketed batching of Koker et al.

    With per-sample graph ``dims`` (``(n, 4)`` — atoms, edges, short edges,
    angles), the sampler also plans padding: every shard is assigned the
    canonical padded target of its workload tier, where a block's shards all
    share the block's tier (per-rank tier equality) and a tier's target is
    the feasibility fixpoint over all member shards
    (:func:`repro.graph.batching.canonical_targets`).  Because shards are
    static, these targets are exact — a compiled trainer captures once per
    tier and replays everything else.

    Because blocks are fixed, dropping the sorted tail would exclude the
    *same largest structures from every epoch* (the other samplers drop a
    different random remainder each time).  The bucket sampler therefore
    ignores ``drop_last``'s full-batch guarantee in favor of coverage: the
    tail becomes one short block (rank counts still equal, so it simply
    forms its own padding tier), and only the unavoidable
    ``n % world_size`` leftover is excluded — taken from evenly spaced
    interior positions of the size-sorted order, never the extremes.
    """

    def __init__(
        self,
        feature_numbers: np.ndarray,
        global_batch_size: int,
        world_size: int = 1,
        seed: int = 0,
        drop_last: bool = True,
        dims: np.ndarray | None = None,
    ) -> None:
        super().__init__(feature_numbers, global_batch_size, world_size, seed, drop_last)
        self._dims = None if dims is None else np.asarray(dims, dtype=np.int64)
        order = np.argsort(self.feature_numbers, kind="stable")
        leftover = self.n % world_size
        if leftover:
            drop_at = (np.arange(1, leftover + 1) * (self.n // (leftover + 1))).astype(
                np.int64
            )
            order = np.delete(order, drop_at)
        blocks: list[np.ndarray] = []
        for lo in range(0, len(order), global_batch_size):
            chunk = order[lo : lo + global_batch_size]
            blocks.append(chunk)
        self._blocks = blocks
        self._shards = [self.partition(block) for block in blocks]
        #: (shard_len, tier) -> canonical (atoms, edges, short, angles) target
        self.tier_targets: dict[tuple[int, int], tuple[int, int, int, int]] = {}
        self._shard_targets: dict[tuple[int, ...], tuple[int, int, int, int]] = {}
        self._shard_dims: dict[tuple[int, ...], tuple[int, int, int, int]] = {}
        if self._dims is not None:
            self._plan_padding(self._dims)

    def reshard(self, world_size: int) -> "BucketBatchSampler":
        """Re-shard the same corpus for a new world size (elastic membership).

        Returns a fresh sampler over the identical ``feature_numbers`` /
        ``dims`` with the same seed and global batch size — block
        composition, shard pairing, and padding tiers are all re-planned
        for ``world_size``.  The global batch must stay divisible by the
        new world size (pick it with
        :func:`repro.train.elastic.largest_feasible_world`).  Sharding a
        block across fewer ranks does not change its averaged gradient;
        only the unavoidable ``n % world_size`` interior leftover may
        shift block membership at the margin.
        """
        return BucketBatchSampler(
            self.feature_numbers,
            self.global_batch_size,
            world_size,
            seed=self.seed,
            drop_last=self.drop_last,
            dims=self._dims,
        )

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        """Serpentine split of the size-sorted block: equal rank counts.

        The greedy pairing hands out *two* samples per turn, so block
        lengths that are not multiples of ``2 * world_size`` leave ranks
        with unequal counts (a ``world_size``-long tail block would leave
        half the ranks empty).  Walking the sorted block in rows of
        ``world_size``, alternating direction per row, gives every rank
        exactly ``len / world_size`` samples with near-equal work — and
        reduces to the smallest+largest pairing when the block is exactly
        two rows.
        """
        batch_indices = np.asarray(batch_indices)
        if len(batch_indices) % self.world_size != 0:
            return super().partition(batch_indices)
        order = np.argsort(self.feature_numbers[batch_indices], kind="stable")
        rows = batch_indices[order].reshape(-1, self.world_size)
        rows[1::2] = rows[1::2, ::-1]
        return [rows[:, r].copy() for r in range(self.world_size)]

    # ------------------------------------------------------------ scheduling
    def num_batches(self) -> int:
        """Fixed blocks per epoch (the tail short block included)."""
        return len(self._blocks)

    def _block_order(self, epoch: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, epoch))
        return rng.permutation(len(self._blocks))

    def global_batches(self, epoch: int = 0) -> Iterator[np.ndarray]:
        """Yield the fixed size-sorted blocks in this epoch's shuffled order.

        Unlike the base sampler, batch *composition* never changes across
        epochs — only the visit order does — which is what keeps shard
        shapes (and compiled programs) static.
        """
        for i in self._block_order(epoch):
            yield self._blocks[i]

    def epoch_partitions(self, epoch: int = 0) -> Iterator[list[np.ndarray]]:
        """Per-iteration rank shards in this epoch's shuffled block order.

        Shards are fixed per block, so the cached pairing is reused rather
        than recomputed.
        """
        for i in self._block_order(epoch):
            yield self._shards[i]

    # ------------------------------------------------------- padding planning
    def _plan_padding(self, dims: np.ndarray) -> None:
        if dims.shape != (self.n, 4):
            raise ValueError(f"dims must be ({self.n}, 4), got {dims.shape}")
        groups: dict[tuple[int, int], list[tuple[int, int, int, int]]] = {}
        keyed: list[tuple[tuple[int, ...], tuple[int, int], tuple]] = []
        for shards in self._shards:
            raws = [tuple(int(c) for c in dims[s].sum(axis=0)) for s in shards]
            # One tier per block: the heaviest shard's tier, so every rank
            # of a step pads to the same canonical shape (equal-count
            # shards) and stragglers never split a block across programs.
            block_tier = max(workload_tier(raw) for raw in raws)
            for shard, raw in zip(shards, raws):
                key = (len(shard), block_tier)
                groups.setdefault(key, []).append(raw)
                keyed.append((tuple(int(i) for i in shard), key, raw))
        self.tier_targets = {
            key: canonical_targets(members) for key, members in groups.items()
        }
        for shard_key, key, raw in keyed:
            self._shard_targets[shard_key] = self.tier_targets[key]
            self._shard_dims[shard_key] = raw

    def padding_targets(
        self, shard_indices: np.ndarray
    ) -> tuple[int, int, int, int] | None:
        """Planned canonical padded shape for one of the fixed shards.

        ``None`` when the sampler was built without ``dims`` or the indices
        are not one of its shards (callers then fall back to compiler-side
        tiering).
        """
        return self._shard_targets.get(tuple(int(i) for i in shard_indices))

    def warm_start_entries(
        self, has_labels: bool = True
    ) -> list[tuple[int, bool, tuple[int, int, int, int]]]:
        """Raw per-shard batch stats for ``StepCompiler.warm_start``."""
        return [
            (len(shard_key), has_labels, raw)
            for shard_key, raw in self._shard_dims.items()
        ]


def imbalance_study(
    sampler: BatchSampler, epochs: int = 1
) -> dict[str, np.ndarray]:
    """Per-iteration rank loads and CoV for a sampler (Fig. 9 data)."""
    loads = []
    covs = []
    for epoch in range(epochs):
        for shards in sampler.epoch_partitions(epoch):
            rank_loads = sampler.rank_loads(shards)
            loads.append(rank_loads)
            covs.append(coefficient_of_variation(rank_loads))
    return {"loads": np.array(loads), "cov": np.array(covs)}

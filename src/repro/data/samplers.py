"""Batch samplers: default sharding vs the load-balance sampler (Fig. 4).

With large global batches across many GPUs, per-rank workloads diverge
because structure sizes follow a long-tail distribution (Fig. 5).  The
paper's sampler sorts the global batch by total feature number
(atoms + bonds + angles) and lets each rank take the smallest and largest
remaining samples in turn, cutting the coefficient of variation of per-rank
work from 0.186 to 0.064 (Fig. 9).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def coefficient_of_variation(values: np.ndarray) -> float:
    """std / mean — the paper's load-imbalance criterion."""
    values = np.asarray(values, dtype=np.float64)
    m = values.mean()
    if m == 0:
        return 0.0
    return float(values.std() / m)


class BatchSampler:
    """Base sampler: shuffled global batches of indices.

    Subclasses override :meth:`partition` to assign a global batch's samples
    to ranks.
    """

    def __init__(
        self,
        feature_numbers: np.ndarray,
        global_batch_size: int,
        world_size: int = 1,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if global_batch_size < world_size:
            raise ValueError(
                f"global batch {global_batch_size} smaller than world size {world_size}"
            )
        if global_batch_size % world_size != 0:
            raise ValueError(
                f"global batch {global_batch_size} not divisible by world size {world_size}"
            )
        self.feature_numbers = np.asarray(feature_numbers)
        self.n = len(self.feature_numbers)
        self.global_batch_size = global_batch_size
        self.world_size = world_size
        self.seed = seed
        self.drop_last = drop_last

    def global_batches(self, epoch: int = 0) -> Iterator[np.ndarray]:
        """Yield shuffled index arrays of size ``global_batch_size``."""
        rng = np.random.default_rng((self.seed, epoch))
        order = rng.permutation(self.n)
        for lo in range(0, self.n, self.global_batch_size):
            chunk = order[lo : lo + self.global_batch_size]
            if len(chunk) < self.global_batch_size:
                if self.drop_last:
                    return
                if len(chunk) < self.world_size:
                    return
                chunk = chunk[: len(chunk) - (len(chunk) % self.world_size)]
            yield chunk

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        """Assign one global batch's indices to ``world_size`` ranks."""
        raise NotImplementedError

    def epoch_partitions(self, epoch: int = 0) -> Iterator[list[np.ndarray]]:
        """Per-iteration rank assignments for a full epoch."""
        for batch in self.global_batches(epoch):
            yield self.partition(batch)

    def rank_loads(self, shards: list[np.ndarray]) -> np.ndarray:
        """Total feature number per rank for one iteration."""
        return np.array([self.feature_numbers[s].sum() for s in shards], dtype=np.float64)


class DefaultSampler(BatchSampler):
    """Reference sharding: contiguous equal-count slices of the shuffled batch."""

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        return [np.asarray(s) for s in np.array_split(batch_indices, self.world_size)]


class LoadBalanceSampler(BatchSampler):
    """The paper's greedy smallest+largest pairing (Section III-C, Fig. 4).

    Samples are sorted by feature number ascending; ranks take turns
    claiming the (smallest, largest) pair of the remaining pool until the
    batch is exhausted.  Every rank receives the same *count* of samples
    with near-equal total work.
    """

    def partition(self, batch_indices: np.ndarray) -> list[np.ndarray]:
        batch_indices = np.asarray(batch_indices)
        order = np.argsort(self.feature_numbers[batch_indices], kind="stable")
        sorted_idx = batch_indices[order]
        shards: list[list[int]] = [[] for _ in range(self.world_size)]
        lo, hi = 0, len(sorted_idx) - 1
        rank = 0
        while lo <= hi:
            shards[rank].append(int(sorted_idx[lo]))
            lo += 1
            if lo <= hi:
                shards[rank].append(int(sorted_idx[hi]))
                hi -= 1
            rank = (rank + 1) % self.world_size
        return [np.array(s, dtype=np.int64) for s in shards]


def imbalance_study(
    sampler: BatchSampler, epochs: int = 1
) -> dict[str, np.ndarray]:
    """Per-iteration rank loads and CoV for a sampler (Fig. 9 data)."""
    loads = []
    covs = []
    for epoch in range(epochs):
        for shards in sampler.epoch_partitions(epoch):
            rank_loads = sampler.rank_loads(shards)
            loads.append(rank_loads)
            covs.append(coefficient_of_variation(rank_loads))
    return {"loads": np.array(loads), "cov": np.array(covs)}

"""Weighted-fair scheduling and load-driven autoscaling for the engine.

One FIFO per ``(version, tier)`` queue served a single stream fine, but a
shared fleet under multi-tenant traffic has a starvation problem: one
tenant's 10k-structure screening sweep lands ahead of another tenant's
interactive relaxation step and the interactive user waits out the whole
backlog.  Two cooperating pieces fix that:

Start-time fair queuing (:class:`FairScheduler`)
    Every accepted request is stamped with a **virtual start tag** drawn
    from its tenant's fair-share clock: ``start = max(V, finish_t)``,
    ``finish_t = start + cost / weight_t``, where ``cost`` is the
    request's modeled workload (:func:`repro.graph.batching.workload_cost`
    — the same cost model the engine's virtual worker clocks are built
    on) and ``V`` is the global virtual time, advanced to the largest
    start tag ever dispatched.  Queues dispatch in ``(tag, seq)`` order,
    so while a heavy tenant is backlogged its tags race ahead and a light
    tenant's occasional request slots in almost immediately — the classic
    SFQ guarantee that any backlogged tenant's service lags its ideal
    weighted fluid share by at most one maximum request cost per
    competitor.  With a single tenant the tags are nondecreasing in
    arrival order, so the schedule degenerates to exactly FIFO —
    bit-for-bit the pre-tenancy engine.

Load-driven elasticity (:class:`Autoscaler`)
    The engine's latency model is fully deterministic (measured service
    times on virtual worker clocks), which makes the scale-out signal
    honest: when the modeled p95 of the watched request class breaches
    the SLA for ``breach_scans`` consecutive drain scans, one worker is
    added — a fresh replica on the :class:`~repro.tensor.compile.
    SharedProgramCache` (zero recaptures, the PR-8 in-place replacement
    machinery).  When the queue stays empty and the whole fleet idle for
    ``idle_scans`` scans, the highest-index worker is drained and
    retired.  Retired slots are reactivated before new replicas are
    built, so repeated load swings don't grow the fleet without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


class FairScheduler:
    """Start-time fair queuing (SFQ) tags over modeled request cost.

    The scheduler only hands out tags and tracks virtual time; ordering
    and dispatch stay in the engine (queues are kept sorted by the tags).
    Weights come from registered tenants
    (:class:`~repro.serve.tenants.TenantPolicy`); unknown tenants
    auto-register with weight 1.
    """

    def __init__(self, weights: dict[str, float] | None = None) -> None:
        self._weights: dict[str, float] = {}
        self._finish: dict[str, float] = {}
        self._vtime = 0.0
        self._seq = 0
        for tenant, weight in (weights or {}).items():
            self.register(tenant, weight)

    def register(self, tenant: str, weight: float = 1.0) -> None:
        """Declare ``tenant``'s fair-share weight (idempotent override)."""
        if weight <= 0:
            raise ValueError(f"tenant {tenant!r}: weight must be > 0, got {weight}")
        self._weights[tenant] = float(weight)

    def weight(self, tenant: str) -> float:
        """The registered weight of ``tenant`` (1.0 when unregistered)."""
        return self._weights.get(tenant, 1.0)

    @property
    def vtime(self) -> float:
        """Global virtual time: the largest start tag ever dispatched."""
        return self._vtime

    def tag(self, tenant: str, cost: float) -> tuple[float, int]:
        """Stamp one request of modeled ``cost``; returns ``(start, seq)``.

        ``start = max(V, tenant's last finish)`` and the tenant's finish
        advances by ``cost / weight`` — a backlogged tenant's tags march
        ahead of the global clock in proportion to the service it has
        been promised, which is exactly what lets lighter tenants
        overtake its queue.  ``seq`` breaks ties by arrival order, so
        equal-tag requests (and the whole single-tenant degenerate case)
        dispatch FIFO.
        """
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        start = max(self._vtime, self._finish.get(tenant, 0.0))
        self._finish[tenant] = start + cost / self.weight(tenant)
        seq = self._seq
        self._seq += 1
        return (start, seq)

    def advance(self, start_tag: float) -> None:
        """Advance virtual time to a dispatched request's start tag.

        Monotonic; called by the engine when a group is dispatched.  This
        is what prevents a long-idle tenant from banking an unbounded
        burst of low tags: after an idle period its next tag starts at
        the current virtual time, not at its stale finish tag.
        """
        self._vtime = max(self._vtime, start_tag)

    def lag(self, tenant: str) -> float:
        """How far ``tenant``'s finish tag trails virtual time (>= 0 when
        the tenant is owed service; backlogged heavy tenants go negative)."""
        return self._vtime - self._finish.get(tenant, 0.0)


@dataclass(frozen=True)
class AutoscaleConfig:
    """Policy for load-driven worker scale-out/in.

    Parameters
    ----------
    sla_p95:
        Target modeled p95 latency (virtual seconds) for ``watch_class``.
    watch_class:
        Request class whose p95 drives scale-out (default: interactive —
        bulk traffic is throughput-bound and does not page anyone).
    breach_scans:
        Consecutive drain scans with p95 over the SLA before one worker
        is added (hysteresis against a single slow batch).
    idle_scans:
        Consecutive drain scans with an empty queue and a fully idle
        fleet before one worker is drained and retired.
    max_workers / min_workers:
        Fleet bounds; scale-out stops at ``max_workers`` even while
        breaching, scale-in never goes below ``min_workers``.
    window:
        Sliding window of recent watched-class latencies the p95 is
        modeled over.
    min_samples:
        Completions required in the window before a breach can be
        declared (a p95 over two requests is noise).
    """

    sla_p95: float
    watch_class: str = "interactive"
    breach_scans: int = 3
    idle_scans: int = 16
    max_workers: int = 8
    min_workers: int = 1
    window: int = 64
    min_samples: int = 8

    def validate(self) -> None:
        """Raise ``ValueError`` on non-sensical scaling policy."""
        if self.sla_p95 <= 0:
            raise ValueError(f"sla_p95 must be > 0, got {self.sla_p95}")
        if self.breach_scans < 1:
            raise ValueError(f"breach_scans must be >= 1, got {self.breach_scans}")
        if self.idle_scans < 1:
            raise ValueError(f"idle_scans must be >= 1, got {self.idle_scans}")
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class Autoscaler:
    """Drives engine fleet size off the modeled SLA of one request class.

    The engine calls :meth:`record` for every completed request and
    :meth:`scan` once per drain scan; the autoscaler decides out/in and
    calls back into :meth:`~repro.serve.engine.InferenceEngine.add_worker`
    / :meth:`~repro.serve.engine.InferenceEngine.retire_worker`.
    """

    def __init__(self, config: AutoscaleConfig) -> None:
        config.validate()
        self.config = config
        self._latencies: deque = deque(maxlen=config.window)
        self._breaches = 0
        self._idle = 0

    def record(self, request_class: str, latency: float) -> None:
        """Feed one completed request's modeled latency into the window."""
        if request_class == self.config.watch_class:
            self._latencies.append(latency)

    def watched_p95(self) -> float:
        """Modeled p95 of the watched class over the sliding window."""
        from repro.serve.engine import percentile

        return percentile(self._latencies, 95)

    def scan(self, engine, now: float) -> str | None:
        """One drain-scan evaluation; returns ``"out"``/``"in"``/``None``.

        Scale-out: ``breach_scans`` consecutive scans with enough samples
        and watched p95 over the SLA add one worker and clear the window
        (the new capacity deserves a fresh verdict).  Scale-in:
        ``idle_scans`` consecutive scans with nothing queued and every
        active worker's virtual clock at or behind ``now`` retire one.
        """
        cfg = self.config
        action = None
        if len(self._latencies) >= cfg.min_samples and self.watched_p95() > cfg.sla_p95:
            self._breaches += 1
            if self._breaches >= cfg.breach_scans and engine.fleet_size < cfg.max_workers:
                engine.add_worker(now)
                self._breaches = 0
                self._latencies.clear()
                action = "out"
        else:
            self._breaches = 0
        if engine.pending == 0 and engine.fleet_idle(now):
            self._idle += 1
            if self._idle >= cfg.idle_scans and engine.fleet_size > cfg.min_workers:
                if engine.retire_worker() is not None:
                    action = action or "in"
                self._idle = 0
        else:
            self._idle = 0
        return action

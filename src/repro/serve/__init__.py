"""High-throughput inference serving for trained potentials."""

from repro.serve.engine import (
    EngineClosed,
    EngineOverloaded,
    EngineStats,
    InferenceEngine,
    Prediction,
    percentile,
)
from repro.serve.faults import DeadlineExceeded, WorkerFailure, WorkerFaultPlan

__all__ = [
    "DeadlineExceeded",
    "EngineClosed",
    "EngineOverloaded",
    "EngineStats",
    "InferenceEngine",
    "Prediction",
    "WorkerFailure",
    "WorkerFaultPlan",
    "percentile",
]

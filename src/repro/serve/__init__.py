"""High-throughput inference serving for trained potentials."""

from repro.serve.engine import (
    EngineClosed,
    EngineOverloaded,
    EngineStats,
    InferenceEngine,
    Prediction,
    percentile,
)

__all__ = [
    "EngineClosed",
    "EngineOverloaded",
    "EngineStats",
    "InferenceEngine",
    "Prediction",
    "percentile",
]

"""High-throughput inference serving for trained potentials."""

from repro.serve.engine import (
    EngineClosed,
    EngineOverloaded,
    EngineStats,
    InferenceEngine,
    Prediction,
    percentile,
)
from repro.serve.faults import DeadlineExceeded, WorkerFailure, WorkerFaultPlan
from repro.serve.scheduler import Autoscaler, AutoscaleConfig, FairScheduler
from repro.serve.tenants import (
    DEFAULT_CLASS,
    DEFAULT_TENANT,
    ClassPolicy,
    TenantPolicy,
    TenantStats,
    standard_classes,
)

__all__ = [
    "Autoscaler",
    "AutoscaleConfig",
    "ClassPolicy",
    "DEFAULT_CLASS",
    "DEFAULT_TENANT",
    "DeadlineExceeded",
    "EngineClosed",
    "EngineOverloaded",
    "EngineStats",
    "InferenceEngine",
    "Prediction",
    "TenantPolicy",
    "TenantStats",
    "WorkerFailure",
    "WorkerFaultPlan",
    "percentile",
    "standard_classes",
]

"""High-throughput inference serving for trained potentials."""

from repro.serve.engine import (
    EngineStats,
    InferenceEngine,
    Prediction,
    percentile,
)

__all__ = [
    "EngineStats",
    "InferenceEngine",
    "Prediction",
    "percentile",
]

"""Multi-tenant serving policy: request classes, quotas, per-tenant stats.

Production traffic against one shared universal potential is not one
stream — it is many *tenants* (per-material-system projects, interactive
users, screening pipelines) issuing two very different kinds of traffic
against the same fleet:

* **interactive** — a human (or an MD driver) is waiting: small bursts,
  latency-sensitive, happy with partial batches.  Short flush wait, tight
  default deadline.
* **bulk** — screening sweeps, trajectory farms, fine-tuning data
  generation: huge backlogs, throughput-sensitive, nobody cares about any
  single request's latency.  Long flush wait (fill the batch), no default
  deadline.

:class:`ClassPolicy` declares a request class (per-class flush wait and
default deadline); :class:`TenantPolicy` declares a tenant (fair-share
weight for the scheduler, bounded pending quota for admission control);
:class:`TenantStats` is the per-tenant accounting block the engine keeps
alongside the global :class:`~repro.serve.engine.EngineStats` — the
conservation invariant (every submitted request is exactly one of
served / shed / expired / failed, and tenant blocks sum to the global
counters) is what ``tests/serve_harness.py`` checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Class name used when ``submit`` is called without ``request_class`` —
#: behaves exactly like the pre-tenancy engine (engine-wide ``max_wait``,
#: no default deadline), so unlabeled traffic is bit-for-bit unchanged.
DEFAULT_CLASS = "bulk"

#: Tenant name used when ``submit`` is called without ``tenant``.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class ClassPolicy:
    """One request class: latency policy shared by every request in it.

    Parameters
    ----------
    name:
        Class name (``submit(..., request_class=name)``).
    max_wait:
        Flush wait for partial batches of this class (seconds on the
        virtual clock); ``None`` uses the engine's global ``max_wait``.
        Interactive classes set this small — a partial batch is better
        than a waiting user; bulk classes set it large — a full batch is
        better than a fragmented one.
    deadline:
        Default relative deadline applied when ``submit`` passes none
        (``None`` = no default).  An explicit ``submit(..., deadline=...)``
        always wins.
    """

    name: str
    max_wait: float | None = None
    deadline: float | None = None

    def validate(self) -> None:
        """Raise ``ValueError`` on non-sensical policy values."""
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.max_wait is not None and self.max_wait < 0:
            raise ValueError(f"class {self.name}: max_wait must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"class {self.name}: deadline must be > 0")


def standard_classes(max_wait: float) -> dict[str, ClassPolicy]:
    """The two stock request classes, scaled to the engine's ``max_wait``.

    ``interactive`` flushes partial batches five times sooner than the
    engine default; ``bulk`` (the default class) keeps exactly the
    engine-wide wait, so unlabeled traffic behaves like the pre-tenancy
    engine.
    """
    return {
        "interactive": ClassPolicy("interactive", max_wait=max_wait / 5),
        "bulk": ClassPolicy("bulk", max_wait=None),
    }


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant: fair-share weight and admission quota.

    Parameters
    ----------
    name:
        Tenant id (``submit(..., tenant=name)``).
    weight:
        Fair-queuing weight: a tenant with weight 2 is entitled to twice
        the modeled service of a weight-1 tenant while both are
        backlogged (:class:`~repro.serve.scheduler.FairScheduler`).
    max_pending:
        Bounded per-tenant pending quota (``0`` = unbounded).  A submit
        that would exceed it is shed with a typed
        :class:`~repro.serve.engine.EngineOverloaded` and counted in the
        tenant's ``shed`` — one tenant's burst cannot fill the global
        queue and starve everyone else's admission.
    """

    name: str
    weight: float = 1.0
    max_pending: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on non-sensical policy values."""
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name}: weight must be > 0")
        if self.max_pending < 0:
            raise ValueError(f"tenant {self.name}: max_pending must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "TenantPolicy":
        """Parse a CLI tenant spec ``NAME[:WEIGHT[:MAX_PENDING]]``."""
        parts = spec.split(":")
        try:
            if not 1 <= len(parts) <= 3:
                raise ValueError("unrecognized form")
            policy = cls(
                name=parts[0],
                weight=float(parts[1]) if len(parts) >= 2 else 1.0,
                max_pending=int(parts[2]) if len(parts) == 3 else 0,
            )
            policy.validate()
        except ValueError as exc:
            raise ValueError(
                f"bad tenant spec {spec!r} ({exc}); expected "
                "NAME[:WEIGHT[:MAX_PENDING]]"
            ) from exc
        return policy


#: Sliding latency window per tenant (mirrors the global window; a busy
#: tenant must not grow its stats with lifetime request count).
_TENANT_LATENCY_WINDOW = 1024


@dataclass
class TenantStats:
    """Per-tenant serving counters (one block per tenant in ``EngineStats``).

    The conservation contract: ``submitted == served + shed + expired +
    failed + pending`` at every point in time, and each counter here sums
    across tenants to its global ``EngineStats`` counterpart.
    """

    #: requests accepted into the queue for this tenant
    submitted: int = 0
    #: requests completed with a :class:`~repro.serve.engine.Prediction`
    served: int = 0
    #: requests rejected at submit by the tenant quota (EngineOverloaded)
    shed: int = 0
    #: requests shed in the queue by their deadline (DeadlineExceeded)
    expired: int = 0
    #: requests shed terminally after worker failures (WorkerFailure)
    failed: int = 0
    #: summed raw workload cost of this tenant's dispatched structures
    raw_cost: int = 0
    #: summed share of priced padded batch cost attributed to this tenant
    #: (raw-cost-proportional split of each batch's padded cost, so the
    #: shares sum across tenants to the global ``padded_cost``)
    padded_cost: float = 0.0
    #: most recent per-request latencies (bounded sliding window)
    latencies: deque = field(
        default_factory=lambda: deque(maxlen=_TENANT_LATENCY_WINDOW)
    )

    @property
    def padding_overhead(self) -> float:
        """Mean relative ghost-row overhead of this tenant's batches."""
        return self.padded_cost / self.raw_cost - 1.0 if self.raw_cost else 0.0

    def as_dict(self) -> dict:
        """Flat dict of all counters plus derived latency percentiles."""
        from repro.serve.engine import percentile

        return {
            "submitted": self.submitted,
            "served": self.served,
            "shed": self.shed,
            "expired": self.expired,
            "failed": self.failed,
            "raw_cost": self.raw_cost,
            "padded_cost": self.padded_cost,
            "padding_overhead": self.padding_overhead,
            "latency_p50": percentile(self.latencies, 50),
            "latency_p95": percentile(self.latencies, 95),
        }

"""Deterministic fault injection for the serving engine's workers.

PR 6 taught the simulated training cluster to rehearse rank deaths,
stragglers and timeouts (:mod:`repro.comm.faults`); a serving tier that is
supposed to sit in the hot path of production traffic must survive the
same failures.  :class:`WorkerFaultPlan` is the serving-side analogue of
:class:`~repro.comm.faults.FaultPlan` — a declarative, seeded schedule of
worker faults keyed by the engine's **global dispatch index** (every batch
dispatch attempt increments it, so a plan is exactly reproducible):

* **kills** mark a worker permanently dead from a dispatch index on; the
  death is *discovered* when a batch is next dispatched to that worker and
  surfaces as a typed :class:`WorkerFailure` **before any result is
  written**, so the engine can re-queue the batch on survivors;
* **flakes** fail a bounded number of dispatches routed to a worker and
  then let it recover — the transient fault class that makes the circuit
  breaker's cooldown re-admission meaningful;
* **stragglers** never fail anything: they add virtual seconds to the
  service time of matching dispatches, so the worker's virtual clock (and
  the engine's modeled latencies) price the slowdown honestly — and give
  hedging something to win against.

Like the comm-layer plan, kills and flakes are *consumed* as they fire and
:meth:`WorkerFaultPlan.unfired` reports anything that never landed, so a
test can assert the rehearsed failure actually happened.
:class:`DeadlineExceeded` is the per-request deadline miss the engine
raises from :meth:`~repro.serve.engine.InferenceEngine.poll` when a
request expired in the queue before it could be served.

Elastic fleets (PR 10) keep plans meaningful: worker indices are *stable*
for the engine's whole lifetime — retiring a worker marks its slot
retired instead of removing it, and scale-out reactivates retired slots
before appending fresh replicas — so a plan's worker index always names
the same replica, and a kill may target a worker that only joins the
rotation via a later scale-out.  The global dispatch index likewise keeps
counting across scale events, so ``unfired()`` remains an exact proof of
which rehearsed faults landed on an autoscaled fleet.
"""

from __future__ import annotations

import numpy as np


class WorkerFailure(RuntimeError):
    """A serving worker failed a dispatch; no results were written.

    Carries the failed ``worker`` and the global ``dispatch`` index the
    failure surfaced at.  Inside the engine the failure is transparently
    retried on surviving workers; it only reaches a caller (from ``poll``
    or ``predict_many``) when a request exhausted its retry budget —
    ``request_id`` is set on that terminal form.
    """

    def __init__(
        self, worker: int, dispatch: int, request_id: int | None = None
    ) -> None:
        detail = f" (request {request_id} shed)" if request_id is not None else ""
        super().__init__(f"worker {worker} failed at dispatch {dispatch}{detail}")
        self.worker = worker
        self.dispatch = dispatch
        self.request_id = request_id


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed while it was still queued.

    Raised by :meth:`~repro.serve.engine.InferenceEngine.poll` for requests
    submitted with ``deadline=`` that expired before dispatch; the request
    was shed (counted in ``stats.deadline_misses``) instead of burning
    worker time on an answer nobody is waiting for.
    """

    def __init__(self, request_id: int, deadline: float, now: float) -> None:
        super().__init__(
            f"request {request_id} missed its deadline "
            f"({now - deadline:.3f}s past {deadline:.3f})"
        )
        self.request_id = request_id
        self.deadline = deadline


class WorkerFaultPlan:
    """Declarative schedule of worker faults, keyed by global dispatch index.

    Build with the chainable methods::

        plan = WorkerFaultPlan().kill(worker=1, dispatch=4)
        plan = WorkerFaultPlan().flake(worker=0, dispatch=2, count=3)
        plan = WorkerFaultPlan().straggle(worker=2, seconds=0.5)

    or parse CLI specs (:meth:`parse`) / draw a seeded random plan
    (:meth:`random`).  Kills and flakes are consumed when they fire;
    :meth:`unfired` names anything still pending.
    """

    def __init__(self) -> None:
        self._kills: dict[int, list[int]] = {}
        self._flakes: list[list[int]] = []  # [worker, start_dispatch, remaining]
        self._skews: list[tuple[int, float, int, int | None]] = []
        self._skews_fired: set[int] = set()

    # -------------------------------------------------------------- builders
    def kill(self, worker: int, dispatch: int) -> "WorkerFaultPlan":
        """Kill ``worker`` permanently at global dispatch index ``dispatch``."""
        if worker < 0:
            raise ValueError(f"worker must be >= 0, got {worker}")
        if dispatch < 0:
            raise ValueError(f"dispatch must be >= 0, got {dispatch}")
        self._kills.setdefault(dispatch, []).append(worker)
        return self

    def flake(self, worker: int, dispatch: int, count: int = 1) -> "WorkerFaultPlan":
        """Fail the next ``count`` dispatches routed to ``worker``.

        Active from dispatch index ``dispatch`` on; unlike a kill the
        worker recovers once the budget is consumed, which is what lets a
        circuit breaker's cooldown re-admission succeed.
        """
        if worker < 0:
            raise ValueError(f"worker must be >= 0, got {worker}")
        if dispatch < 0:
            raise ValueError(f"dispatch must be >= 0, got {dispatch}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._flakes.append([worker, dispatch, count])
        return self

    def straggle(
        self,
        worker: int,
        seconds: float,
        start: int = 0,
        stop: int | None = None,
    ) -> "WorkerFaultPlan":
        """Add ``seconds`` of virtual service time to ``worker``'s dispatches.

        Active for dispatch indices in ``[start, stop)``; ``stop=None``
        means forever.  Overlapping windows accumulate.
        """
        if worker < 0:
            raise ValueError(f"worker must be >= 0, got {worker}")
        if seconds < 0:
            raise ValueError(f"straggler seconds must be >= 0, got {seconds}")
        if start < 0 or (stop is not None and stop <= start):
            raise ValueError(f"bad straggler window [{start}, {stop})")
        self._skews.append((worker, float(seconds), start, stop))
        return self

    # --------------------------------------------------------------- queries
    @property
    def empty(self) -> bool:
        """Whether no faults remain scheduled (fired ones are consumed)."""
        return not (self._kills or any(f[2] for f in self._flakes) or self._skews)

    def take_kills(self, dispatch: int) -> list[int]:
        """Workers scheduled to die at ``dispatch``; consumed (fires once)."""
        return self._kills.pop(dispatch, [])

    def take_flake(self, worker: int, dispatch: int) -> bool:
        """Consume one flake unit for ``worker`` at ``dispatch``, if any."""
        for entry in self._flakes:
            if entry[0] == worker and entry[1] <= dispatch and entry[2] > 0:
                entry[2] -= 1
                return True
        return False

    def skew(self, worker: int, dispatch: int) -> float:
        """Virtual straggler seconds for ``worker`` at ``dispatch``.

        Windows that contribute are marked fired (see :meth:`unfired`).
        """
        total = 0.0
        for i, (w, seconds, start, stop) in enumerate(self._skews):
            if w == worker and start <= dispatch and (stop is None or dispatch < stop):
                total += seconds
                self._skews_fired.add(i)
        return total

    def unfired(self) -> list[str]:
        """Canonical specs of planned faults that have not fired yet.

        Kills/flakes are consumed as they fire and straggler windows are
        marked the first time :meth:`skew` samples them, so a test can
        assert ``plan.unfired() == []`` to prove every rehearsed failure
        actually landed.
        """
        specs = [
            f"kill:{worker}:{dispatch}"
            for dispatch in sorted(self._kills)
            for worker in self._kills[dispatch]
        ]
        specs += [
            f"flake:{worker}:{start}:{remaining}"
            for worker, start, remaining in self._flakes
            if remaining > 0
        ]
        for i, (worker, seconds, start, stop) in enumerate(self._skews):
            if i not in self._skews_fired:
                window = f":{start}" + (f":{stop}" if stop is not None else "")
                specs.append(
                    f"straggle:{worker}:{seconds}{window if window != ':0' else ''}"
                )
        return specs

    # ---------------------------------------------------------- constructors
    @classmethod
    def parse(cls, specs: list[str]) -> "WorkerFaultPlan":
        """Build a plan from CLI specs (``serve --inject-worker-fault``).

        Accepted forms::

            kill:WORKER:DISPATCH
            flake:WORKER:DISPATCH[:COUNT]
            straggle:WORKER:SECONDS[:START[:STOP]]

        Malformed specs and duplicates raise ``ValueError`` naming the
        offending spec string.
        """
        plan = cls()
        seen: set[str] = set()
        for spec in specs:
            normalized = spec.strip()
            if normalized in seen:
                raise ValueError(
                    f"duplicate worker fault spec {spec!r}: each fault may "
                    "be specified only once"
                )
            seen.add(normalized)
            parts = spec.split(":")
            kind = parts[0]
            try:
                if kind == "kill" and len(parts) == 3:
                    plan.kill(worker=int(parts[1]), dispatch=int(parts[2]))
                elif kind == "flake" and len(parts) in (3, 4):
                    count = int(parts[3]) if len(parts) == 4 else 1
                    plan.flake(worker=int(parts[1]), dispatch=int(parts[2]), count=count)
                elif kind == "straggle" and len(parts) in (3, 4, 5):
                    start = int(parts[3]) if len(parts) >= 4 else 0
                    stop = int(parts[4]) if len(parts) == 5 else None
                    plan.straggle(
                        worker=int(parts[1]),
                        seconds=float(parts[2]),
                        start=start,
                        stop=stop,
                    )
                else:
                    raise ValueError("unrecognized form")
            except ValueError as exc:
                raise ValueError(
                    f"bad worker fault spec {spec!r} ({exc}); expected "
                    "kill:WORKER:DISPATCH, flake:WORKER:DISPATCH[:COUNT], or "
                    "straggle:WORKER:SECONDS[:START[:STOP]]"
                ) from exc
        return plan

    @classmethod
    def random(
        cls,
        seed: int,
        n_workers: int,
        n_dispatches: int,
        p_kill: float = 0.0,
        p_flake: float = 0.0,
        straggler_seconds: float = 0.0,
    ) -> "WorkerFaultPlan":
        """Seeded random plan over ``n_dispatches`` (same seed, same plan).

        Each dispatch index independently schedules a kill of a
        uniform-random worker with probability ``p_kill`` and a one-shot
        flake with probability ``p_flake``; ``straggler_seconds > 0``
        additionally skews one random worker for the whole run.
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        rng = np.random.default_rng(seed)
        plan = cls()
        for dispatch in range(n_dispatches):
            if p_kill and rng.random() < p_kill:
                plan.kill(worker=int(rng.integers(n_workers)), dispatch=dispatch)
            if p_flake and rng.random() < p_flake:
                plan.flake(worker=int(rng.integers(n_workers)), dispatch=dispatch)
        if straggler_seconds > 0:
            plan.straggle(
                worker=int(rng.integers(n_workers)), seconds=straggler_seconds
            )
        return plan

"""Tiered dynamic batching over compiled-program replay: the serving engine.

FastCHGNet's premise is that one universal potential should be cheap enough
to use everywhere — and the dominant downstream workload is not training but
*bulk inference*: screening 10k candidate structures, relaxation farms,
fine-tuning data generation, high-rate MD.  The trainer-side machinery this
repo already has (workload tiers, ghost padding, tape capture/replay) is
exactly what a serving layer needs; :class:`InferenceEngine` composes it
into a request pipeline:

Micro-batching
    Requests (crystals or prebuilt graphs) queue per **workload tier**
    (:func:`repro.graph.batching.workload_tier` of their graph dims), so a
    batch only ever combines similarly-sized structures.  A tier flushes
    when it reaches ``max_batch_structs`` or — on the queue-based async API
    — when its oldest request has waited ``max_wait`` (deadline-bounded
    partial flush).  Each flushed group is collated into one
    :class:`~repro.graph.batching.GraphBatch` and ghost-padded by the
    compiler to the tier's canonical shape, so nearly every batch **replays
    a cached program** instead of recompiling or re-taping.

Workers and the shared program cache
    Batches fan out across ``n_workers`` simulated workers, each holding its
    own model replica and :class:`~repro.tensor.compile.InferenceCompiler` —
    all sharing one :class:`~repro.tensor.compile.SharedProgramCache`.  A
    program captured by any worker replays on every other after parameter
    **rebinding** against that worker's weights, so capture cost is paid
    once per tier, not once per worker.  Worker wall-clock is modeled with
    per-worker virtual clocks advanced by the *measured* service time of
    each batch (the same measured-compute + modeled-time approach as
    :mod:`repro.comm.scaling`), which yields per-request latencies for
    p50/p95 reporting.

Bit-identity
    Padded, batched, replayed predictions are **bit-identical** to eager
    per-request inference.  Replay-vs-eager equality is the compile
    module's existing contract; batching and padding preserve per-structure
    bits because every kernel in the inference path (including the
    derivative-force backward) is **row-stable** — BLAS products, whose
    kernel choice normally varies with the row count, are routed through
    the row-stable evaluation in ``ops_linalg._matmul_np`` (narrow
    products as per-row pairwise reductions, wide ones pinned to the
    prefix-stable contiguous kernel).  Tests and
    ``benchmarks/bench_serve.py`` verify the end-to-end guarantee on
    models with non-trivial weights.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.graph.batching import GraphBatch, collate, workload_tier
from repro.graph.crystal_graph import CrystalGraph, build_graph
from repro.model.chgnet import CHGNetModel
from repro.structures.crystal import Crystal
from repro.tensor import no_grad
from repro.tensor.compile import InferenceCompiler, SharedProgramCache


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile of a sequence (0 <= q <= 100)."""
    if not values:
        return 0.0
    return float(np.percentile(np.fromiter(values, dtype=np.float64), q))


#: Sliding window of per-request latencies kept for p50/p95 reporting; a
#: long-lived engine (an MD calculator's persistent engine, a day-long
#: request loop) must not grow its stats with lifetime request count.
_LATENCY_WINDOW = 4096


@dataclass
class Prediction:
    """Served single-structure prediction (bit-equal to solo eager)."""

    request_id: int
    energy: float  # total, eV
    energy_per_atom: float
    forces: np.ndarray  # (n, 3)
    stress: np.ndarray  # (3, 3)
    magmom: np.ndarray  # (n,)
    worker: int = 0
    batch_structs: int = 1
    latency: float = 0.0  # modeled seconds from submit to batch completion


@dataclass
class EngineStats:
    """Aggregate serving counters (see :meth:`InferenceEngine.stats`)."""

    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: most recent per-request latencies (bounded sliding window)
    latencies: deque = field(default_factory=lambda: deque(maxlen=_LATENCY_WINDOW))

    @property
    def hit_rate(self) -> float:
        """Program-cache hit rate over all dispatched batches."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "latency_p50": percentile(self.latencies, 50),
            "latency_p95": percentile(self.latencies, 95),
        }


@dataclass
class _Pending:
    request_id: int
    graph: CrystalGraph
    submitted: float


class InferenceEngine:
    """Dynamic-batching inference server over one trained model.

    Parameters
    ----------
    model:
        The source of truth for weights.  ``n_workers - 1`` additional
        replicas are constructed and kept in sync via
        :meth:`refresh_weights`.
    n_workers:
        Simulated workers; batches go to the worker whose virtual clock
        frees up first.
    compile:
        Replay cached :class:`~repro.tensor.compile.InferenceCompiler`
        programs (tier-padded batches, shared cache).  ``False`` evaluates
        every batch eagerly without padding — with ``max_batch_structs=1``
        this is exactly the per-request eager baseline.
    max_batch_structs:
        Flush threshold per tier queue; also the micro-batch size
        :meth:`predict_many` packs.
    max_wait:
        Deadline (seconds, on the caller-supplied ``now`` clock) after
        which a partial tier queue is flushed by :meth:`poll`/:meth:`submit`.
    """

    def __init__(
        self,
        model: CHGNetModel,
        n_workers: int = 1,
        compile: bool = True,
        max_batch_structs: int = 8,
        max_wait: float = 0.05,
        max_programs: int = 16,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_batch_structs < 1:
            raise ValueError(f"max_batch_structs must be >= 1, got {max_batch_structs}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        self.model = model
        self.config = model.config
        self.n_workers = n_workers
        self.max_batch_structs = max_batch_structs
        self.max_wait = max_wait
        self.workers: list[CHGNetModel] = [model]
        for w in range(1, n_workers):
            replica = CHGNetModel(model.config, np.random.default_rng(w))
            replica.load_state_dict(model.state_dict())
            self.workers.append(replica)
        self.cache: SharedProgramCache | None = None
        self.compilers: list[InferenceCompiler] | None = None
        if compile:
            self.cache = SharedProgramCache(max_programs)
            self.compilers = [
                InferenceCompiler(worker, cache=self.cache) for worker in self.workers
            ]
        self.stats = EngineStats()
        self._worker_free = [0.0] * n_workers
        self._queues: dict[int, list[_Pending]] = {}
        self._results: dict[int, Prediction] = {}
        self._next_id = 0
        self._now = 0.0

    # ------------------------------------------------------------ weight sync
    def refresh_weights(self) -> None:
        """Re-sync every worker replica from the source model.

        Cached programs survive: replays bind parameter arrays on every
        call, so the next batch on each worker simply rebinds the new
        weights.
        """
        state = self.model.state_dict()
        for replica in self.workers[1:]:
            replica.load_state_dict(state)

    # ------------------------------------------------------------- submission
    def _graph_of(self, item: Crystal | CrystalGraph) -> CrystalGraph:
        if isinstance(item, CrystalGraph):
            return item
        return build_graph(item, self.config.cutoff_atom, self.config.cutoff_bond)

    def submit(self, item: Crystal | CrystalGraph, now: float | None = None) -> int:
        """Enqueue one structure; returns its request id.

        Full tier queues flush immediately; partial queues wait for more
        same-tier work until ``max_wait`` passes on the ``now`` clock.
        """
        now = self._advance(now)
        graph = self._graph_of(item)
        tier = workload_tier(
            (graph.num_atoms, graph.num_edges, graph.num_short_edges, graph.num_angles)
        )
        request_id = self._next_id
        self._next_id += 1
        self.stats.requests += 1
        self._queues.setdefault(tier, []).append(_Pending(request_id, graph, now))
        self._flush_ready(now)
        return request_id

    def poll(self, request_id: int, now: float | None = None) -> Prediction | None:
        """The finished prediction for ``request_id``, or ``None`` if pending.

        Polling advances the deadline clock: any tier queue whose oldest
        request has waited ``max_wait`` is flushed as a partial batch, so a
        trickle of traffic is served within a bounded delay instead of
        waiting forever for a full batch.
        """
        now = self._advance(now)
        self._flush_ready(now)
        return self._results.pop(request_id, None)

    def flush(self, now: float | None = None) -> int:
        """Dispatch every queued request regardless of batch size/deadline."""
        now = self._advance(now)
        n = 0
        for tier in sorted(self._queues):
            queue = self._queues[tier]
            while queue:
                group, self._queues[tier] = (
                    queue[: self.max_batch_structs],
                    queue[self.max_batch_structs :],
                )
                queue = self._queues[tier]
                self._dispatch(group, now)
                n += 1
        return n

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _advance(self, now: float | None) -> float:
        if now is not None:
            self._now = max(self._now, float(now))
        return self._now

    def _flush_ready(self, now: float) -> None:
        for tier in sorted(self._queues):
            queue = self._queues[tier]
            while len(queue) >= self.max_batch_structs:
                group = queue[: self.max_batch_structs]
                self._queues[tier] = queue = queue[self.max_batch_structs :]
                self._dispatch(group, now)
            if queue and now - queue[0].submitted >= self.max_wait:
                self._queues[tier] = []
                self._dispatch(queue, now)

    # ------------------------------------------------------------ synchronous
    def predict_many(
        self, items: list[Crystal | CrystalGraph]
    ) -> list[Prediction]:
        """Predict all items, micro-batched per tier; order follows inputs.

        All requests are treated as submitted at the engine's current
        virtual time; the whole set is flushed (tail groups become partial
        batches), so the call is deterministic and leaves nothing queued.
        """
        graphs = [self._graph_of(item) for item in items]
        if self.compilers is not None:
            self._warm_start(graphs)
        # A synchronous wave arrives after all previously dispatched work
        # finished; rebasing the clock keeps its latencies self-contained.
        self._now = max(self._now, self.makespan())
        ids = [self.submit(g) for g in graphs]
        self.flush()
        return [self._results.pop(request_id) for request_id in ids]

    def _warm_start(self, graphs: list[CrystalGraph]) -> None:
        """Pre-size canonical tier shapes from the planned micro-batches.

        Grouping is simulated ahead of submission (FIFO per tier, chunks of
        ``max_batch_structs``) so every tier's canonical shape is known
        before the first capture — one capture per tier for the whole
        stream, exactly like the trainers' warm start.
        """
        queues: dict[int, list[tuple[int, int, int, int]]] = {}
        entries: list[tuple[int, bool, tuple[int, int, int, int]]] = []
        for g in graphs:
            dims = (g.num_atoms, g.num_edges, g.num_short_edges, g.num_angles)
            queue = queues.setdefault(workload_tier(dims), [])
            queue.append(dims)
            if len(queue) >= self.max_batch_structs:
                entries.append(self._group_entry(queue))
                queue.clear()
        for queue in queues.values():
            if queue:
                entries.append(self._group_entry(queue))
        # The canonical dict is shared through the cache: seeding one
        # compiler seeds them all.
        self.compilers[0].warm_start(entries)

    @staticmethod
    def _group_entry(
        dims: list[tuple[int, int, int, int]]
    ) -> tuple[int, bool, tuple[int, int, int, int]]:
        summed = tuple(int(s) for s in np.sum(np.asarray(dims, dtype=np.int64), axis=0))
        return (len(dims), False, summed)

    # -------------------------------------------------------------- dispatch
    def _eval_batch(self, worker: int, batch: GraphBatch) -> dict[str, np.ndarray]:
        if self.compilers is not None:
            return self.compilers[worker].run(batch)
        model = self.workers[worker]
        if model.config.use_heads:
            with no_grad():
                output = model.forward(batch, training=False)
        else:
            output = model.forward(batch, training=False)
        return {
            "energy": output.energy_per_atom.data,
            "forces": output.forces.data,
            "stress": output.stress.data,
            "magmom": output.magmom.data,
        }

    def _dispatch(self, group: list[_Pending], now: float) -> None:
        batch = collate([p.graph for p in group])
        worker = int(np.argmin(self._worker_free))
        before = (
            self.cache.hits if self.cache is not None else 0,
            self.cache.misses if self.cache is not None else 0,
        )
        t0 = time.perf_counter()
        out = self._eval_batch(worker, batch)
        service = time.perf_counter() - t0
        if self.cache is not None:
            self.stats.cache_hits += self.cache.hits - before[0]
            self.stats.cache_misses += self.cache.misses - before[1]
        start = max(self._worker_free[worker], now)
        finish = start + service
        self._worker_free[worker] = finish
        self.stats.batches += 1
        offsets = batch.atom_offsets
        for i, pending in enumerate(group):
            a0, a1 = int(offsets[i]), int(offsets[i + 1])
            e_pa = float(out["energy"][i])
            latency = finish - pending.submitted
            self.stats.latencies.append(latency)
            self._results[pending.request_id] = Prediction(
                request_id=pending.request_id,
                energy=e_pa * (a1 - a0),
                energy_per_atom=e_pa,
                forces=out["forces"][a0:a1].copy(),
                stress=out["stress"][i].copy(),
                magmom=out["magmom"][a0:a1].copy(),
                worker=worker,
                batch_structs=len(group),
                latency=latency,
            )

    # ----------------------------------------------------------------- stats
    def makespan(self) -> float:
        """Latest worker-finish time on the virtual clock."""
        return max(self._worker_free)

    def compile_stats(self) -> dict[str, int] | None:
        """Aggregated per-worker compiler counters (``None`` when eager)."""
        if self.compilers is None:
            return None
        totals: dict[str, int] = {}
        for compiler in self.compilers:
            for key, value in compiler.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def snapshot(self) -> dict:
        """One flat dict of serving + compiler counters (for benches/CLI)."""
        merged = self.stats.as_dict()
        comp = self.compile_stats()
        if comp is not None:
            merged.update(comp)
        return merged

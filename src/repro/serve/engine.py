"""Tiered dynamic batching over compiled-program replay: the serving engine.

FastCHGNet's premise is that one universal potential should be cheap enough
to use everywhere — and the dominant downstream workload is not training but
*bulk inference*: screening 10k candidate structures, relaxation farms,
fine-tuning data generation, high-rate MD.  The trainer-side machinery this
repo already has (workload tiers, ghost padding, tape capture/replay) is
exactly what a serving layer needs; :class:`InferenceEngine` composes it
into a request pipeline:

Micro-batching
    Requests (crystals or prebuilt graphs) queue per **workload tier**
    (:func:`repro.graph.batching.workload_tier` of their graph dims), so a
    batch only ever combines similarly-sized structures.  A tier flushes
    when it reaches ``max_batch_structs`` or — on the queue-based async API
    — when its oldest request has waited ``max_wait`` (deadline-bounded
    partial flush).  Each flushed group is collated into one
    :class:`~repro.graph.batching.GraphBatch` and ghost-padded by the
    compiler to the tier's canonical shape, so nearly every batch **replays
    a cached program** instead of recompiling or re-taping.

Adaptive tier merging
    A diverse trickle under exact per-tier queues produces many deadline
    flushes of nearly-empty groups.  With ``merge_tiers=True`` a partial
    group that hits its deadline absorbs pending same-version requests from
    **adjacent tiers** (nearest tier first, FIFO within a tier) until it is
    full or the next absorption would push the group's priced padding
    overhead — :func:`repro.graph.batching.padding_overhead` of the merged
    dims against the canonical shape the compiler will pad to — past
    ``merge_overhead_cap``.  Fuller batches amortize per-batch dispatch cost
    at a bounded ghost-row price; per-structure results stay bit-identical
    regardless of grouping (see below).

Versioned weights (serving under live fine-tuning)
    The engine keeps a registry of **published weight versions**.
    :meth:`publish_weights` snapshots the source model (or an explicit state
    dict, e.g. streamed from :class:`repro.train.ServingTrainer`) as a new
    version and makes it the default for new requests; every request is
    **pinned** to a version at submit time, so requests already queued when
    a publish lands still finish on the weights they entered with.  Worker
    replicas rebind **copy-on-write**: a publish copies nothing into the
    workers — a worker installs a version's arrays (by reference) only when
    it actually dispatches a batch pinned to a version it is not currently
    holding.  Programs in the :class:`~repro.tensor.compile.SharedProgramCache`
    are keyed by batch-shape signature only and rebind parameters on every
    replay, so a publish triggers **zero recaptures**.

Engine-side collate memoization
    With ``memoize=N`` the engine keeps an LRU of collated micro-batches
    keyed by the identity of the member graphs (and an LRU of built graphs
    keyed by crystal identity), so recurring pools — relaxation loops,
    committee evaluation, repeated screening passes — bind-and-replay with
    zero re-concatenation, mirroring the training loaders' batch
    memoization.  Submitted objects must be treated as immutable once
    built, the same read-only contract the training pipeline requires.

Workers and the shared program cache
    Batches fan out across ``n_workers`` simulated workers, each holding its
    own model replica and :class:`~repro.tensor.compile.InferenceCompiler` —
    all sharing one :class:`~repro.tensor.compile.SharedProgramCache`.  A
    program captured by any worker replays on every other after parameter
    **rebinding** against that worker's weights, so capture cost is paid
    once per tier, not once per worker.  Worker wall-clock is modeled with
    per-worker virtual clocks advanced by the *measured* service time of
    each batch (the same measured-compute + modeled-time approach as
    :mod:`repro.comm.scaling`), which yields per-request latencies for
    p50/p95 reporting.

Multi-tenant SLA serving
    Requests carry a **tenant** id and a **request class** (``interactive``
    / ``bulk``, per-class flush wait and default deadline —
    :mod:`repro.serve.tenants`).  Inside each ``(version, tier)`` queue,
    requests dispatch in **weighted-fair order**: every accepted request
    is stamped with a start-time-fair-queuing tag over its modeled
    workload cost (:class:`~repro.serve.scheduler.FairScheduler`), so a
    tenant flooding the queue with a bulk sweep cannot starve another
    tenant's interactive trickle — with one tenant and one class the tags
    are FIFO and the schedule is bit-for-bit the pre-tenancy engine.
    Admission control is per tenant (bounded ``max_pending`` quotas shed
    with typed :class:`EngineOverloaded`) on top of the global bound, and
    :class:`~repro.serve.tenants.TenantStats` blocks account every
    tenant's served/shed/expired/failed/padding/latency story inside
    :class:`EngineStats`.  With ``paced=True`` queued work is dispatched
    **when a worker's virtual clock is actually free** instead of
    immediately on flush, which is what lets fair ordering (and the
    autoscaler's SLA signal) bite under backlog; ``flush()`` still
    force-drains.  An :class:`~repro.serve.scheduler.Autoscaler` can grow
    the fleet (fresh replicas on the shared program cache, zero
    recaptures) when the watched class's modeled p95 breaches its SLA for
    K consecutive drain scans, and drain-and-retire workers when idle.

Fault tolerance
    Workers can fail.  A :class:`~repro.serve.faults.WorkerFaultPlan` kills,
    flakes or straggles individual workers at dispatch time; a dead worker
    is *discovered* when a batch is dispatched to it and surfaces as a
    typed :class:`~repro.serve.faults.WorkerFailure` **before any result is
    written**, so the whole group transparently re-queues onto the
    surviving rotation (bounded per-request retries, exponential backoff
    priced on the virtual clocks).  Per-worker health is a
    consecutive-failure circuit breaker: a tripped worker drains out of
    the dispatch rotation and is re-admitted half-open after a cooldown,
    while a discovered *kill* drains the worker permanently — or, with
    ``replace_workers=True``, replaces it in place with a fresh replica on
    the shared program cache, mirroring :func:`repro.train.run_elastic`.
    Requests may carry deadlines (``submit(..., deadline=...)``); a request
    whose deadline passes while queued is shed with a typed
    :class:`~repro.serve.faults.DeadlineExceeded` instead of burning worker
    time.  Batches stuck behind a straggling worker can be **hedged** to
    the idlest healthy worker, keeping the first (modeled) completion —
    safe because of the bit-identity contract below.

Bit-identity
    Padded, batched, replayed predictions are **bit-identical** to eager
    per-request inference.  Replay-vs-eager equality is the compile
    module's existing contract; batching and padding preserve per-structure
    bits because every kernel in the inference path (including the
    derivative-force backward) is **row-stable** — BLAS products, whose
    kernel choice normally varies with the row count, are routed through
    the row-stable evaluation in ``ops_linalg._matmul_np`` (narrow
    products as per-row pairwise reductions, wide ones pinned to the
    prefix-stable contiguous kernel).  The same property makes predictions
    independent of *grouping*, which is what licenses adaptive tier merging
    and version-interleaved batches.  Tests and
    ``benchmarks/bench_serve.py`` / ``benchmarks/bench_serve_live.py``
    verify the end-to-end guarantee on models with non-trivial weights.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.graph.batching import (
    GraphBatch,
    collate,
    group_padded_targets,
    padding_overhead,
    workload_cost,
    workload_tier,
)
from repro.graph.crystal_graph import CrystalGraph, build_graph
from repro.model.chgnet import CHGNetModel
from repro.serve.faults import DeadlineExceeded, WorkerFailure, WorkerFaultPlan
from repro.serve.scheduler import Autoscaler, AutoscaleConfig, FairScheduler
from repro.serve.tenants import (
    DEFAULT_CLASS,
    DEFAULT_TENANT,
    ClassPolicy,
    TenantPolicy,
    TenantStats,
    standard_classes,
)
from repro.structures.crystal import Crystal
from repro.tensor import no_grad
from repro.tensor.compile import InferenceCompiler, SharedProgramCache


def percentile(values, q: float) -> float:
    """Linear-interpolated percentile of a sequence (0 <= q <= 100)."""
    if not values:
        return 0.0
    return float(np.percentile(np.fromiter(values, dtype=np.float64), q))


class EngineClosed(RuntimeError):
    """Raised when work is submitted to an engine after :meth:`shutdown`."""


class EngineOverloaded(RuntimeError):
    """Raised when a bounded engine sheds a request (``max_pending`` reached).

    The request is **not** enqueued; the caller owns retry policy.  Every
    shed is counted in :attr:`EngineStats.load_shed`.
    """


#: Sliding window of per-request latencies kept for p50/p95 reporting; a
#: long-lived engine (an MD calculator's persistent engine, a day-long
#: request loop) must not grow its stats with lifetime request count.
_LATENCY_WINDOW = 4096


@dataclass
class Prediction:
    """Served single-structure prediction (bit-equal to solo eager)."""

    request_id: int
    energy: float  # total, eV
    energy_per_atom: float
    forces: np.ndarray  # (n, 3)
    stress: np.ndarray  # (3, 3)
    magmom: np.ndarray  # (n,)
    worker: int = 0
    batch_structs: int = 1
    latency: float = 0.0  # modeled seconds from submit to batch completion
    version: int = 0  # weight version this prediction was served on


@dataclass
class EngineStats:
    """Aggregate serving counters (see :meth:`InferenceEngine.stats`)."""

    requests: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: publish_weights calls (the constructor's initial snapshot included)
    publishes: int = 0
    #: requests absorbed across tiers by adaptive merging
    merges: int = 0
    #: dispatched batches that mixed more than one workload tier
    merged_batches: int = 0
    collate_hits: int = 0
    collate_misses: int = 0
    #: requests rejected because the pending queue was at ``max_pending``
    load_shed: int = 0
    #: lockstep trajectory-farm rounds served via :meth:`InferenceEngine.predict_wave`
    waves: int = 0
    #: structures served across those waves
    wave_structs: int = 0
    #: summed raw workload cost of all dispatched structures
    raw_cost: int = 0
    #: summed priced workload cost of the padded batches serving them
    padded_cost: int = 0
    #: dispatches that discovered a dead/flaking worker (typed WorkerFailure)
    worker_failures: int = 0
    #: requests transparently re-queued after a worker failure
    retries: int = 0
    #: batches duplicated to a second worker (straggler hedging)
    hedges: int = 0
    #: hedged batches where the duplicate finished first
    hedge_wins: int = 0
    #: requests shed because their deadline passed while queued
    deadline_misses: int = 0
    #: dead workers replaced in place by a fresh replica
    worker_replacements: int = 0
    #: requests rejected at submit by a per-tenant pending quota
    quota_shed: int = 0
    #: requests shed terminally after exhausting worker-failure retries
    failed: int = 0
    #: workers added (or retired slots reactivated) by scale-out
    scale_outs: int = 0
    #: workers drained and retired by idle scale-in
    scale_ins: int = 0
    #: most recent per-request latencies (bounded sliding window)
    latencies: deque = field(default_factory=lambda: deque(maxlen=_LATENCY_WINDOW))
    #: per-request-class latency windows (same bound), for SLA reporting
    class_latencies: dict = field(default_factory=dict)
    #: per-tenant accounting blocks (see :class:`~repro.serve.tenants.TenantStats`)
    tenants: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Program-cache hit rate over all dispatched batches."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def padding_overhead(self) -> float:
        """Mean relative ghost-row overhead of dispatched batches (0 = none)."""
        return self.padded_cost / self.raw_cost - 1.0 if self.raw_cost else 0.0

    @property
    def collate_hit_rate(self) -> float:
        """Collate-memoization hit rate (0 when memoization is off)."""
        total = self.collate_hits + self.collate_misses
        return self.collate_hits / total if total else 0.0

    def tenant(self, name: str) -> TenantStats:
        """The accounting block for ``name`` (created on first touch)."""
        stats = self.tenants.get(name)
        if stats is None:
            stats = self.tenants[name] = TenantStats()
        return stats

    def record_class_latency(self, request_class: str, latency: float) -> None:
        """Append one completion to ``request_class``'s latency window."""
        window = self.class_latencies.get(request_class)
        if window is None:
            window = self.class_latencies[request_class] = deque(
                maxlen=_LATENCY_WINDOW
            )
        window.append(latency)

    def class_p95(self, request_class: str) -> float:
        """Modeled p95 latency of one request class (0 with no samples)."""
        return percentile(self.class_latencies.get(request_class, ()), 95)

    def as_dict(self) -> dict:
        """Flat dict of all counters plus derived rates (for benches/CLI)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "publishes": self.publishes,
            "merges": self.merges,
            "merged_batches": self.merged_batches,
            "collate_hits": self.collate_hits,
            "collate_misses": self.collate_misses,
            "load_shed": self.load_shed,
            "waves": self.waves,
            "wave_structs": self.wave_structs,
            "worker_failures": self.worker_failures,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "deadline_misses": self.deadline_misses,
            "worker_replacements": self.worker_replacements,
            "quota_shed": self.quota_shed,
            "failed": self.failed,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "padding_overhead": self.padding_overhead,
            "latency_p50": percentile(self.latencies, 50),
            "latency_p95": percentile(self.latencies, 95),
            "class_latency_p50": {
                name: percentile(window, 50)
                for name, window in sorted(self.class_latencies.items())
            },
            "class_latency_p95": {
                name: percentile(window, 95)
                for name, window in sorted(self.class_latencies.items())
            },
            "tenants": {
                name: stats.as_dict() for name, stats in sorted(self.tenants.items())
            },
        }


@dataclass
class _Pending:
    request_id: int
    graph: CrystalGraph
    submitted: float
    version: int
    dims: tuple[int, int, int, int]
    deadline: float | None = None  # absolute, on the engine's virtual clock
    retries: int = 0  # re-dispatches consumed after worker failures
    tenant: str = DEFAULT_TENANT
    cls: str = DEFAULT_CLASS
    wait: float = 0.0  # effective flush wait (the class's, else the engine's)
    cost: int = 0  # modeled workload cost (the fair scheduler's currency)
    tag: float = 0.0  # weighted-fair virtual start tag
    seq: int = 0  # arrival tie-break (FIFO within equal tags)


class InferenceEngine:
    """Dynamic-batching inference server over versioned model weights.

    Parameters
    ----------
    model:
        The source of truth for weights.  ``n_workers`` replicas serve the
        traffic; the source model itself is never evaluated by the engine,
        so a trainer may keep fine-tuning it while the engine serves —
        weights only reach the workers through published version snapshots
        (:meth:`publish_weights`; the constructor publishes version 0).
    n_workers:
        Simulated workers; batches go to the worker whose virtual clock
        frees up first.
    compile:
        Replay cached :class:`~repro.tensor.compile.InferenceCompiler`
        programs (tier-padded batches, shared cache).  ``False`` evaluates
        every batch eagerly without padding — with ``max_batch_structs=1``
        this is exactly the per-request eager baseline.
    max_batch_structs:
        Flush threshold per tier queue; also the micro-batch size
        :meth:`predict_many` packs.
    max_wait:
        Deadline (seconds, on the caller-supplied ``now`` clock) after
        which a partial tier queue is flushed by :meth:`poll`/:meth:`submit`.
    max_programs:
        LRU capacity of the worker-shared program cache.
    merge_tiers:
        Enable adaptive micro-batching: deadline-flushed partial groups
        absorb pending same-version requests from adjacent tiers, bounded
        by ``merge_overhead_cap`` (see the module docstring).
    merge_overhead_cap:
        Maximum priced padding overhead (relative ghost-row workload,
        :func:`repro.graph.batching.padding_overhead`) a merged group may
        reach; absorption from a tier stops at the first request that
        would exceed it.
    memoize:
        LRU entries for engine-side collate memoization (``0`` disables).
        Micro-batches are cached by member-graph identity and built graphs
        by crystal identity, so recurring pools re-serve with zero
        re-concatenation.  Submitted objects must not be mutated afterwards.
    max_versions:
        Soft cap on retained weight versions: publishing prunes the oldest
        versions not pinned by queued requests, not installed on a worker
        and not current (in-flight pins are never evicted).
    max_pending:
        Bound on the pending-request queue (``0`` = unbounded).  A submit
        that would exceed it is **shed**: the request is rejected with
        :class:`EngineOverloaded`, counted in ``stats.load_shed``, and the
        engine keeps serving — honest backpressure instead of an unbounded
        queue hiding an overload.
    fault_plan:
        Optional :class:`~repro.serve.faults.WorkerFaultPlan` injecting
        worker kills/flakes/stragglers at dispatch time (``None`` = the
        fault-free engine, whose scheduling is bit-for-bit unchanged).
    max_retries:
        Re-dispatches a request may consume after worker failures before
        it is shed with a terminal :class:`~repro.serve.faults.WorkerFailure`.
    retry_backoff:
        Base of the exponential backoff (virtual seconds) priced onto a
        group's dispatch clock after each failed attempt.
    hedge:
        Duplicate batches stuck behind a straggling worker (known plan
        skew, or queue delay beyond ``hedge_after``) onto the idlest
        healthy worker, keeping the first modeled completion.  Both
        workers' clocks advance — hedging buys latency with duplicate
        work, honestly priced.  Safe: replays are bit-identical, so the
        winner's bits equal the loser's.
    hedge_after:
        Queue delay (seconds on the virtual clock) beyond which a batch
        is hedged even without known skew; ``None`` uses ``max_wait``.
    breaker_threshold:
        Consecutive failures that trip a worker's circuit breaker and
        drain it from the dispatch rotation.
    breaker_cooldown:
        Virtual seconds a tripped worker stays drained before half-open
        re-admission (one more failure re-trips it immediately).
    replace_workers:
        Replace a worker discovered *dead* (killed, not merely flaking)
        with a fresh replica + compiler on the shared program cache,
        mirroring :func:`repro.train.run_elastic`'s replace-recovery; the
        replacement installs whatever version its next batch is pinned
        to.  ``False`` drains dead workers permanently.
    tenants:
        Tenant policies (:class:`~repro.serve.tenants.TenantPolicy` list,
        or a ``name -> policy`` dict): fair-share weights and per-tenant
        pending quotas.  When given, submits naming an undeclared tenant
        are rejected with ``ValueError`` (closed-world admission) and
        weighted-fair ordering defaults on; ``None`` leaves the tenant
        world open (any label auto-registers at weight 1).
    classes:
        Request-class policies (``name -> ClassPolicy``); ``None``
        installs the stock ``interactive``/``bulk`` pair
        (:func:`~repro.serve.tenants.standard_classes`).  The default
        class (``bulk``) always behaves exactly like the pre-tenancy
        engine: global ``max_wait``, no default deadline.
    fair:
        Dispatch each queue in weighted-fair (start-tag) order instead of
        FIFO.  Default: on iff ``tenants`` were declared.  With one
        tenant and one class the fair order *is* FIFO, bit-for-bit.
    paced:
        Hold queued work until a worker's virtual clock is actually free
        (discrete-event dispatch) instead of dispatching every ready
        group immediately.  This is what gives fair ordering leverage
        under backlog — later interactive arrivals overtake queued bulk
        work — and makes the SLA signal honest.  ``flush()`` (and
        therefore ``shutdown()``) still force-drains everything.
    autoscale:
        :class:`~repro.serve.scheduler.AutoscaleConfig` enabling
        load-driven elasticity: scale out on sustained watched-class p95
        SLA breach, drain-and-retire when idle.  New workers are fresh
        replicas on the shared program cache — zero recaptures.
    """

    def __init__(
        self,
        model: CHGNetModel,
        n_workers: int = 1,
        compile: bool = True,
        max_batch_structs: int = 8,
        max_wait: float = 0.05,
        max_programs: int = 16,
        merge_tiers: bool = False,
        merge_overhead_cap: float = 0.5,
        memoize: int = 0,
        max_versions: int = 4,
        max_pending: int = 0,
        fault_plan: WorkerFaultPlan | None = None,
        max_retries: int = 2,
        retry_backoff: float = 1e-3,
        hedge: bool = False,
        hedge_after: float | None = None,
        breaker_threshold: int = 2,
        breaker_cooldown: float = 1.0,
        replace_workers: bool = False,
        tenants: list[TenantPolicy] | dict[str, TenantPolicy] | None = None,
        classes: dict[str, ClassPolicy] | None = None,
        fair: bool | None = None,
        paced: bool = False,
        autoscale: AutoscaleConfig | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_batch_structs < 1:
            raise ValueError(f"max_batch_structs must be >= 1, got {max_batch_structs}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        if merge_overhead_cap < 0:
            raise ValueError(
                f"merge_overhead_cap must be non-negative, got {merge_overhead_cap}"
            )
        if memoize < 0:
            raise ValueError(f"memoize must be non-negative, got {memoize}")
        if max_versions < 1:
            raise ValueError(f"max_versions must be >= 1, got {max_versions}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be non-negative, got {max_pending}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be non-negative, got {retry_backoff}")
        if hedge_after is not None and hedge_after < 0:
            raise ValueError(f"hedge_after must be non-negative, got {hedge_after}")
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be non-negative, got {breaker_cooldown}"
            )
        self.model = model
        self.config = model.config
        self.n_workers = n_workers
        self.max_batch_structs = max_batch_structs
        self.max_wait = max_wait
        self.merge_tiers = merge_tiers
        self.merge_overhead_cap = float(merge_overhead_cap)
        self.memoize = int(memoize)
        self.max_versions = max_versions
        self.max_pending = int(max_pending)
        self.fault_plan = fault_plan
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.hedge = hedge
        self.hedge_after = float(max_wait if hedge_after is None else hedge_after)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.replace_workers = replace_workers
        if isinstance(tenants, dict):
            tenant_policies = dict(tenants)
        elif tenants is not None:
            tenant_policies = {p.name: p for p in tenants}
            if len(tenant_policies) != len(tenants):
                raise ValueError("duplicate tenant names in tenants")
        else:
            tenant_policies = None
        self._closed_tenants = tenant_policies is not None
        self.tenants: dict[str, TenantPolicy] = tenant_policies or {}
        for policy in self.tenants.values():
            policy.validate()
        self.classes: dict[str, ClassPolicy] = (
            standard_classes(self.max_wait) if classes is None else dict(classes)
        )
        for policy in self.classes.values():
            policy.validate()
        self.classes.setdefault(DEFAULT_CLASS, ClassPolicy(DEFAULT_CLASS))
        self.fair = self._closed_tenants if fair is None else bool(fair)
        self.paced = bool(paced)
        self.scheduler = FairScheduler(
            {name: p.weight for name, p in self.tenants.items()}
        )
        self.autoscaler = Autoscaler(autoscale) if autoscale is not None else None
        self._tenant_pending: dict[str, int] = {}
        self._closed = False
        self.workers: list[CHGNetModel] = [
            CHGNetModel(model.config, np.random.default_rng(w))
            for w in range(n_workers)
        ]
        self._worker_params = [replica.parameters() for replica in self.workers]
        self._worker_version = [-1] * n_workers
        self.cache: SharedProgramCache | None = None
        self.compilers: list[InferenceCompiler] | None = None
        if compile:
            self.cache = SharedProgramCache(max_programs)
            self.compilers = [
                InferenceCompiler(worker, cache=self.cache) for worker in self.workers
            ]
        self.stats = EngineStats()
        self._worker_free = [0.0] * n_workers
        # Fault-tolerance state: global dispatch-attempt counter (the fault
        # plan's key), the set of actually-dead workers (plan truth, only
        # *discovered* by dispatching to one), and the engine's health view.
        self._dispatches = 0
        self._dead: set[int] = set()
        self._consec_failures = [0] * n_workers
        self._drained_until: list[float | None] = [None] * n_workers
        # Elastic fleet: retired workers stay in place (indices are stable
        # for fault plans and stats) but leave the dispatch rotation.
        self._retired = [False] * n_workers
        # (version, tier) -> FIFO of pending requests
        self._queues: dict[tuple[int, int], list[_Pending]] = {}
        self._results: dict[int, Prediction] = {}
        # request id -> terminal typed failure, raised (once) by poll()
        self._failed: dict[int, Exception] = {}
        self._next_id = 0
        self._now = 0.0
        self._collate_cache: OrderedDict[tuple, tuple[list, GraphBatch]] = OrderedDict()
        self._graph_cache: OrderedDict[int, tuple[Crystal, CrystalGraph]] = OrderedDict()
        # version id -> parameter arrays aligned with model.parameters() order
        self._versions: OrderedDict[int, list[np.ndarray]] = OrderedDict()
        self._next_version = 0
        self.current_version = -1
        self.publish_weights()

    # ------------------------------------------------------------ weight sync
    def publish_weights(
        self, state: dict[str, np.ndarray] | None = None, version: int | None = None
    ) -> int:
        """Register a new weight version and make it current; returns its id.

        ``state`` is a ``name -> array`` state dict (validated against the
        model's parameter names/shapes); ``None`` snapshots the source
        model's current weights — the hook a live trainer uses at epoch end
        (:class:`repro.train.ServingTrainer`).  ``version`` picks an
        explicit id (must be unused); ``None`` auto-increments.

        Publishing is **copy-on-write** with respect to the workers: the
        snapshot is one array copy into the registry, worker replicas
        rebind to it lazily (by reference) when they next serve a batch
        pinned to it, and cached programs never recapture — their
        signatures contain no weights, and replays rebind parameters on
        every call.  Requests already queued stay pinned to the version
        they were submitted under.
        """
        if state is None:
            arrays = [p.data.copy() for p in self.model.parameters()]
        else:
            arrays = self.workers[0].aligned_state(state)
        if len(arrays) != len(self._worker_params[0]):
            raise ValueError(
                f"{len(arrays)} parameter arrays for "
                f"{len(self._worker_params[0])} worker parameters"
            )
        if version is None:
            version = self._next_version
        elif int(version) < 0:
            # Negative ids are reserved (the workers' "nothing installed"
            # sentinel is -1).
            raise ValueError(f"version must be non-negative, got {version}")
        elif int(version) in self._versions:
            raise ValueError(f"version {version} already published")
        version = int(version)
        self._next_version = max(self._next_version, version) + 1
        self._versions[version] = arrays
        self.current_version = version
        self.stats.publishes += 1
        self._prune_versions()
        return version

    def refresh_weights(self) -> int:
        """Publish the source model's current weights as a new version.

        Equivalent to :meth:`publish_weights` with no arguments (the
        pre-versioning name, kept for callers that just fine-tuned the
        source model in place).  Returns the new version id; cached
        programs survive — replays bind parameter arrays on every call.
        """
        return self.publish_weights()

    @property
    def versions(self) -> list[int]:
        """Ids of the currently retained weight versions (oldest first)."""
        return list(self._versions)

    def _prune_versions(self) -> None:
        if len(self._versions) <= self.max_versions:
            return
        pinned = {p.version for queue in self._queues.values() for p in queue}
        pinned.add(self.current_version)
        pinned.update(v for v in self._worker_version if v >= 0)
        for v in list(self._versions):
            if len(self._versions) <= self.max_versions:
                break
            if v not in pinned:
                del self._versions[v]

    def _ensure_version(self, worker: int, version: int) -> None:
        """Install ``version``'s arrays on ``worker`` (by reference) if stale."""
        if self._worker_version[worker] == version:
            return
        arrays = self._versions.get(version)
        if arrays is None:
            raise RuntimeError(f"weight version {version} evicted while in flight")
        # Zero-copy rebinding: registry arrays are private snapshots and
        # workers never write parameter data in place, so replicas (and the
        # compiled programs bound through them) can share them directly.
        for p, arr in zip(self._worker_params[worker], arrays):
            p.data = arr
        self._worker_version[worker] = version

    # ------------------------------------------------------------- submission
    @staticmethod
    def _validate_item(item: Crystal | CrystalGraph) -> None:
        """Reject poisoned inputs before they reach a batch.

        A NaN/inf coordinate would propagate through every structure
        collated alongside it; failing the one bad request here keeps the
        engine (and its neighbours in the batch) healthy.
        """
        if isinstance(item, Crystal):
            if not np.all(np.isfinite(item.lattice.matrix)):
                raise ValueError("crystal lattice contains non-finite values")
            if not np.all(np.isfinite(item.frac_coords)):
                raise ValueError("crystal coordinates contain non-finite values")

    def _graph_of(self, item: Crystal | CrystalGraph) -> CrystalGraph:
        self._validate_item(item)
        if isinstance(item, CrystalGraph):
            return item
        if self.memoize:
            entry = self._graph_cache.get(id(item))
            if entry is not None and entry[0] is item:
                self._graph_cache.move_to_end(id(item))
                return entry[1]
        graph = build_graph(item, self.config.cutoff_atom, self.config.cutoff_bond)
        if self.memoize:
            self._graph_cache[id(item)] = (item, graph)
            if len(self._graph_cache) > self.memoize * self.max_batch_structs:
                self._graph_cache.popitem(last=False)
        return graph

    def _resolve_tenant(self, tenant: str | None) -> TenantPolicy:
        """The policy for ``tenant``, auto-registering in an open world.

        With declared ``tenants`` the world is closed: unknown names are a
        caller bug (``ValueError``), not a shed.  Without declarations any
        label is admitted at weight 1 with no quota.
        """
        name = DEFAULT_TENANT if tenant is None else tenant
        policy = self.tenants.get(name)
        if policy is None:
            if self._closed_tenants:
                raise ValueError(f"tenant {name!r} is not declared on this engine")
            policy = self.tenants[name] = TenantPolicy(name)
            self.scheduler.register(name, policy.weight)
        return policy

    def _resolve_class(self, request_class: str | None) -> ClassPolicy:
        """The policy for ``request_class`` (default class when ``None``)."""
        name = DEFAULT_CLASS if request_class is None else request_class
        policy = self.classes.get(name)
        if policy is None:
            raise ValueError(
                f"request class {name!r} is not declared on this engine "
                f"(have {sorted(self.classes)})"
            )
        return policy

    def submit(
        self,
        item: Crystal | CrystalGraph,
        now: float | None = None,
        version: int | None = None,
        deadline: float | None = None,
        tenant: str | None = None,
        request_class: str | None = None,
    ) -> int:
        """Enqueue one structure; returns its request id.

        The request is pinned to ``version`` (default: the current one) and
        is served on exactly those weights even if newer versions are
        published while it waits.  Full tier queues flush immediately
        (when a worker is free, on a ``paced`` engine); partial queues
        wait for more same-tier work until the request class's flush wait
        (default: the engine's ``max_wait``) passes on the ``now`` clock.

        ``tenant`` names the submitting tenant: the request is stamped
        with the tenant's weighted-fair start tag and counted against its
        pending quota and :class:`~repro.serve.tenants.TenantStats` block.
        ``request_class`` picks the latency class (``interactive`` /
        ``bulk`` by default); a class may carry a shorter flush wait and
        a default deadline.

        ``deadline`` is a relative budget in virtual seconds (default:
        the class's): a request still *queued* when ``now`` passes
        ``submit-time + deadline`` is shed (counted in
        ``stats.deadline_misses``) and its :meth:`poll` raises
        :class:`~repro.serve.faults.DeadlineExceeded` — nobody is
        waiting for a late answer, so no worker time is burned on one.
        A request already dispatched always completes.

        Raises :class:`EngineClosed` after :meth:`shutdown`,
        :class:`EngineOverloaded` when the global queue bound or the
        tenant's quota is full (the shed is counted, nothing is
        enqueued), and ``ValueError`` for undeclared tenants/classes and
        structures with non-finite coordinates (one poisoned request
        fails without touching anything already queued).
        """
        if self._closed:
            raise EngineClosed("engine is shut down; submit rejected")
        policy = self._resolve_tenant(tenant)
        cls = self._resolve_class(request_class)
        tenant_stats = self.stats.tenant(policy.name)
        if self.max_pending and self.pending >= self.max_pending:
            self.stats.load_shed += 1
            tenant_stats.shed += 1
            raise EngineOverloaded(
                f"pending queue full ({self.pending}/{self.max_pending}); request shed"
            )
        tenant_pending = self._tenant_pending.get(policy.name, 0)
        if policy.max_pending and tenant_pending >= policy.max_pending:
            self.stats.quota_shed += 1
            tenant_stats.shed += 1
            raise EngineOverloaded(
                f"tenant {policy.name!r} quota full "
                f"({tenant_pending}/{policy.max_pending}); request shed"
            )
        if deadline is None:
            deadline = cls.deadline
        elif deadline < 0:
            raise ValueError(f"deadline must be non-negative, got {deadline}")
        now = self._advance(now)
        if version is None:
            version = self.current_version
        elif version not in self._versions:
            raise ValueError(f"version {version!r} is not published")
        graph = self._graph_of(item)
        dims = (
            graph.num_atoms,
            graph.num_edges,
            graph.num_short_edges,
            graph.num_angles,
        )
        request_id = self._next_id
        self._next_id += 1
        self.stats.requests += 1
        tenant_stats.submitted += 1
        self._tenant_pending[policy.name] = tenant_pending + 1
        cost = workload_cost(*dims)
        if self.fair:
            tag, seq = self.scheduler.tag(policy.name, cost)
        else:
            tag, seq = 0.0, request_id
        pending = _Pending(
            request_id,
            graph,
            now,
            version,
            dims,
            deadline=None if deadline is None else now + float(deadline),
            tenant=policy.name,
            cls=cls.name,
            wait=self.max_wait if cls.max_wait is None else cls.max_wait,
            cost=cost,
            tag=tag,
            seq=seq,
        )
        queue = self._queues.setdefault((version, workload_tier(dims)), [])
        if self.fair:
            # Keep the queue in (tag, seq) dispatch order.  Tags are
            # nondecreasing per tenant, so single-tenant streams insert at
            # the end — exactly the FIFO append of the pre-tenancy engine.
            i = len(queue)
            while i > 0 and (queue[i - 1].tag, queue[i - 1].seq) > (tag, seq):
                i -= 1
            queue.insert(i, pending)
        else:
            queue.append(pending)
        self._flush_ready(now)
        return request_id

    def poll(self, request_id: int, now: float | None = None) -> Prediction | None:
        """The finished prediction for ``request_id``, or ``None`` if pending.

        Polling advances the deadline clock: any tier queue whose oldest
        request has waited ``max_wait`` is flushed as a partial batch, so a
        trickle of traffic is served within a bounded delay instead of
        waiting forever for a full batch.

        A request that terminally failed raises its typed error (once):
        :class:`~repro.serve.faults.DeadlineExceeded` if its deadline
        passed while it was queued,
        :class:`~repro.serve.faults.WorkerFailure` if every retry was shed.
        """
        now = self._advance(now)
        self._flush_ready(now)
        failure = self._failed.pop(request_id, None)
        if failure is not None:
            raise failure
        return self._results.pop(request_id, None)

    def flush(self, now: float | None = None, merge: bool | None = None) -> int:
        """Dispatch every queued request regardless of batch size/deadline.

        ``merge`` controls whether partial tail groups absorb adjacent-tier
        requests (default: the engine's ``merge_tiers`` setting).  Returns
        the number of batches dispatched.  On a ``paced`` engine the
        force-drain dispatches in global weighted-fair order (smallest
        start tag first across every queue) rather than per-key FIFO, so
        the backlog's modeled latencies still respect tenant shares.
        """
        now = self._advance(now)
        merge = self.merge_tiers if merge is None else merge
        if self.paced:
            for key in list(self._queues):
                self._queues[key] = self._shed_expired(self._queues[key], now)
            n = 0
            while self._dispatch_next(now, merge, force=True):
                n += 1
            return n
        return sum(
            self._drain(key, now, merge, lambda queue: True)
            for key in sorted(self._queues)
        )

    def shutdown(self, flush: bool = True) -> int:
        """Stop accepting work; idempotent.  Returns batches dispatched.

        ``flush=True`` (default) drains everything still queued so no
        accepted request is lost; finished results stay pollable after
        shutdown.  Further :meth:`submit`/:meth:`predict_many` calls raise
        :class:`EngineClosed`.
        """
        if self._closed:
            return 0
        dispatched = self.flush() if flush else 0
        self._closed = True
        return dispatched

    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has been called."""
        return self._closed

    @property
    def pending(self) -> int:
        """Number of submitted requests not yet dispatched in a batch."""
        return sum(len(q) for q in self._queues.values())

    def _advance(self, now: float | None) -> float:
        if now is not None:
            self._now = max(self._now, float(now))
        return self._now

    def _flush_ready(self, now: float) -> None:
        """One drain scan: shed, autoscale, dispatch whatever is ready.

        Unpaced engines dispatch every ready group immediately (the
        pre-tenancy behavior, with per-class flush waits); paced engines
        dispatch ready groups only while a worker's virtual clock is
        actually free at ``now``, in global weighted-fair order.
        """
        if self.autoscaler is not None:
            self.autoscaler.scan(self, now)
        if self.paced:
            for key in list(self._queues):
                self._queues[key] = self._shed_expired(self._queues[key], now)
            while self._idle_worker(now) and self._dispatch_next(
                now, self.merge_tiers, force=False
            ):
                pass
            return
        for key in sorted(self._queues):
            self._drain(
                key,
                now,
                self.merge_tiers,
                lambda queue: any(now - p.submitted >= p.wait for p in queue),
            )

    def _drain(self, key: tuple[int, int], now: float, merge: bool, tail) -> int:
        """Dispatch ``key``'s full groups, then its remainder if ``tail`` says so.

        ``tail(queue)`` decides whether a leftover partial group goes out
        (deadline expiry for the ready scan, unconditionally for a flush);
        a dispatched partial absorbs adjacent tiers when ``merge``.
        Returns the number of batches dispatched.
        """
        queue = self._queues.get(key)
        if not queue:
            return 0
        queue = self._queues[key] = self._shed_expired(queue, now)
        n = 0
        while len(queue) >= self.max_batch_structs:
            group = queue[: self.max_batch_structs]
            self._queues[key] = queue = queue[self.max_batch_structs :]
            self._dispatch(group, now)
            n += 1
        if queue and tail(queue):
            self._queues[key] = []
            if merge:
                queue = self._merge_partial(key, queue, now)
            self._dispatch(queue, now)
            n += 1
        return n

    def _shed_expired(self, queue: list[_Pending], now: float) -> list[_Pending]:
        """Drop queued requests whose deadline has passed; returns survivors.

        Each miss is counted and recorded as a typed
        :class:`~repro.serve.faults.DeadlineExceeded` for :meth:`poll` to
        raise.  Only *queued* requests can miss — once dispatched, a
        request always completes.
        """
        kept = []
        for pending in queue:
            if pending.deadline is not None and now > pending.deadline:
                self.stats.deadline_misses += 1
                self.stats.tenant(pending.tenant).expired += 1
                self._tenant_pending[pending.tenant] -= 1
                self._failed[pending.request_id] = DeadlineExceeded(
                    pending.request_id, pending.deadline, now
                )
            else:
                kept.append(pending)
        return kept

    def _idle_worker(self, now: float) -> bool:
        """Whether any believed-healthy, non-retired worker is free at ``now``."""
        for w in range(self.n_workers):
            if self._retired[w]:
                continue
            until = self._drained_until[w]
            if until is not None and until > now:
                continue
            if self._worker_free[w] <= now:
                return True
        return False

    def _dispatch_next(self, now: float, merge: bool, force: bool) -> bool:
        """Dispatch the weighted-fair next ready group, if any (paced mode).

        A queue is *ready* when it holds a full group or any member's
        flush wait has expired (``force`` makes every non-empty queue
        ready); among ready queues the one whose head carries the
        smallest ``(tag, seq)`` wins, so dispatch order across tiers and
        versions follows the fair schedule, not the key sort.  Returns
        whether a group was dispatched.
        """
        best_key = None
        best_rank = None
        for key, queue in self._queues.items():
            if not queue:
                continue
            if not (
                force
                or len(queue) >= self.max_batch_structs
                or any(now - p.submitted >= p.wait for p in queue)
            ):
                continue
            rank = (queue[0].tag, queue[0].seq)
            if best_rank is None or rank < best_rank:
                best_key, best_rank = key, rank
        if best_key is None:
            return False
        queue = self._queues[best_key]
        group = queue[: self.max_batch_structs]
        self._queues[best_key] = queue[self.max_batch_structs :]
        if merge and len(group) < self.max_batch_structs:
            group = self._merge_partial(best_key, group, now)
        self._dispatch(group, now)
        return True

    # ------------------------------------------------------- adaptive merging
    def _canonical_seeds(self, dims_list: list[tuple]) -> tuple:
        """Seed shapes for pricing a group's padding (estimate).

        The shared canonical tier entry the compilers have grown so far for
        the group's prospective batch tier, so the price reflects the shape
        the batch will actually be padded to (up to canonical growth caused
        by the batch itself).
        """
        if self.cache is None:
            return ()
        summed = tuple(
            int(s) for s in np.sum(np.asarray(dims_list, dtype=np.int64), axis=0)
        )
        stored = self.cache.canonical.get(
            (len(dims_list) + 1, False, workload_tier(summed))
        )
        return () if stored is None else (stored,)

    def _group_overhead(self, dims_list: list[tuple]) -> float:
        if self.compilers is None:
            return 0.0  # eager batches are never padded
        return padding_overhead(dims_list, seeds=self._canonical_seeds(dims_list))

    def _merge_partial(
        self, key: tuple[int, int], group: list[_Pending], now: float
    ) -> list[_Pending]:
        """Absorb adjacent-tier same-version requests into a partial group.

        Nearest tiers first, FIFO within a tier; absorption from a tier
        stops at the first request whose addition would price the merged
        group's padding overhead above ``merge_overhead_cap``.  Requests
        whose deadline already passed are shed, not absorbed.
        """
        version, tier = key
        dims_list = [p.dims for p in group]
        candidates = sorted(
            (k for k in self._queues if k[0] == version and k != key and self._queues[k]),
            key=lambda k: (abs(k[1] - tier), k[1]),
        )
        for k in candidates:
            queue = self._queues[k] = self._shed_expired(self._queues[k], now)
            while queue and len(group) < self.max_batch_structs:
                cand = queue[0]
                if self._group_overhead(dims_list + [cand.dims]) > self.merge_overhead_cap:
                    break
                group.append(queue.pop(0))
                dims_list.append(cand.dims)
                self.stats.merges += 1
            if len(group) >= self.max_batch_structs:
                break
        return group

    # ------------------------------------------------------------ synchronous
    def predict_many(
        self, items: list[Crystal | CrystalGraph]
    ) -> list[Prediction]:
        """Predict all items, micro-batched per tier; order follows inputs.

        All requests are treated as submitted at the engine's current
        virtual time and pinned to the current weight version; the whole
        set is flushed with exact per-tier grouping (tail groups become
        partial batches), so the call is deterministic and leaves nothing
        queued.
        """
        if self._closed:
            raise EngineClosed("engine is shut down; predict_many rejected")
        graphs = [self._graph_of(item) for item in items]
        if self.compilers is not None:
            self._warm_start(graphs)
        # A synchronous wave arrives after all previously dispatched work
        # finished; rebasing the clock keeps its latencies self-contained.
        self._now = max(self._now, self.makespan())
        ids = [self.submit(g) for g in graphs]
        self.flush(merge=False)
        predictions = []
        for request_id in ids:
            failure = self._failed.pop(request_id, None)
            if failure is not None:
                raise failure
            predictions.append(self._results.pop(request_id))
        return predictions

    def predict_wave(self, items: list[Crystal | CrystalGraph]) -> list[Prediction]:
        """One lockstep wave of a trajectory farm; order follows inputs.

        Identical to :meth:`predict_many` (exact per-tier grouping, current
        version, nothing left queued) but counted as a wave in
        :attr:`EngineStats.waves`/``wave_structs``, so farm throughput and
        wave shrinkage show up in :meth:`snapshot`.
        """
        predictions = self.predict_many(items)
        self.stats.waves += 1
        self.stats.wave_structs += len(items)
        return predictions

    def warm_start(self, items: list[Crystal | CrystalGraph]) -> int:
        """Seed canonical tier shapes from a known upcoming stream.

        Async callers that know their stream up front (the CLI's queue
        driver, screening loops) can pre-size tier shapes the way
        :meth:`predict_many` does implicitly, so first-pass captures happen
        once per group shape instead of recompiling as canonical shapes
        grow.  On a ``merge_tiers`` engine the simulation also plays out
        the adaptive cross-tier absorption a flush of this stream would
        perform, so merged group shapes are pre-sized too.  Returns the
        number of tier groups seeded (0 on an eager engine).
        """
        if self.compilers is None:
            return 0
        return self._warm_start(
            [self._graph_of(item) for item in items], merge=self.merge_tiers
        )

    def _warm_start(self, graphs: list[CrystalGraph], merge: bool = False) -> int:
        """Pre-size canonical tier shapes from the planned micro-batches.

        Grouping is simulated ahead of submission — FIFO per tier, chunks
        of ``max_batch_structs``, and with ``merge`` the same nearest-tier
        tail absorption :meth:`flush` performs — so every group's canonical
        shape is known before the first capture: one capture per group
        shape for the whole stream, exactly like the trainers' warm start.

        Merge decisions price padding against the canonical shapes this
        very seeding creates, so with ``merge`` the simulate-and-seed loop
        runs to a fixpoint (canonical entries only grow; in practice one
        extra pass settles it).
        """
        dims_list = [
            (g.num_atoms, g.num_edges, g.num_short_edges, g.num_angles)
            for g in graphs
        ]
        seeded = 0
        for _ in range(4):
            entries = [self._group_entry(g) for g in self._plan_groups(dims_list, merge)]
            before = dict(self.cache.canonical)
            # The canonical dict is shared through the cache: seeding one
            # compiler seeds them all.
            seeded = self.compilers[0].warm_start(entries)
            if not merge or dict(self.cache.canonical) == before:
                break
        return seeded

    def _plan_groups(
        self, dims_list: list[tuple[int, int, int, int]], merge: bool
    ) -> list[list[tuple[int, int, int, int]]]:
        """Simulate the groups a single-version flush of this stream makes.

        Mirrors :meth:`_drain` over tiers in sorted order: full chunks of
        ``max_batch_structs`` first, then the tier's tail — which, with
        ``merge``, absorbs from the *remaining* queues nearest-tier-first
        (FIFO within a tier, priced against ``merge_overhead_cap``),
        exactly like :meth:`_merge_partial` at flush time.
        """
        queues: dict[int, list[tuple[int, int, int, int]]] = {}
        for dims in dims_list:
            queues.setdefault(workload_tier(dims), []).append(dims)
        groups: list[list[tuple[int, int, int, int]]] = []
        for tier in sorted(queues):
            queue = queues[tier]
            while len(queue) >= self.max_batch_structs:
                groups.append(queue[: self.max_batch_structs])
                del queue[: self.max_batch_structs]
            if not queue:
                continue
            group = list(queue)
            queue.clear()
            if merge:
                candidates = sorted(
                    (k for k in queues if k != tier and queues[k]),
                    key=lambda k: (abs(k - tier), k),
                )
                for k in candidates:
                    other = queues[k]
                    while other and len(group) < self.max_batch_structs:
                        if (
                            self._group_overhead(group + [other[0]])
                            > self.merge_overhead_cap
                        ):
                            break
                        group.append(other.pop(0))
                    if len(group) >= self.max_batch_structs:
                        break
            groups.append(group)
        return groups

    @staticmethod
    def _group_entry(
        dims: list[tuple[int, int, int, int]]
    ) -> tuple[int, bool, tuple[int, int, int, int]]:
        summed = tuple(int(s) for s in np.sum(np.asarray(dims, dtype=np.int64), axis=0))
        return (len(dims), False, summed)

    # -------------------------------------------------------------- dispatch
    def _collate_group(self, graphs: list[CrystalGraph]) -> GraphBatch:
        """Collate a group, through the identity-keyed LRU when memoizing.

        A hit returns the previously assembled :class:`GraphBatch` object —
        including its pad/aux caches, so the compiled step binds and
        replays with zero re-concatenation.  Strong references to the
        member graphs are held alongside the batch to keep the id key
        valid.
        """
        if not self.memoize:
            return collate(graphs)
        key = tuple(id(g) for g in graphs)
        entry = self._collate_cache.get(key)
        if entry is not None:
            self._collate_cache.move_to_end(key)
            self.stats.collate_hits += 1
            return entry[1]
        batch = collate(graphs)
        self.stats.collate_misses += 1
        self._collate_cache[key] = (list(graphs), batch)
        if len(self._collate_cache) > self.memoize:
            self._collate_cache.popitem(last=False)
        return batch

    def _eval_batch(self, worker: int, batch: GraphBatch) -> dict[str, np.ndarray]:
        if self.compilers is not None:
            return self.compilers[worker].run(batch)
        model = self.workers[worker]
        if model.config.use_heads:
            with no_grad():
                output = model.forward(batch, training=False)
        else:
            output = model.forward(batch, training=False)
        return {
            "energy": output.energy_per_atom.data,
            "forces": output.forces.data,
            "stress": output.stress.data,
            "magmom": output.magmom.data,
        }

    def _pick_worker(self, now: float, exclude: int | None = None) -> int | None:
        """Believed-healthy worker whose virtual clock frees first, or ``None``.

        Skips workers drained by the circuit breaker whose cooldown has not
        elapsed; a worker whose cooldown *has* elapsed is re-admitted
        half-open (one more failure re-trips the breaker immediately).
        Ties break to the lowest index, matching the fault-free argmin, so
        an engine with no fault plan schedules bit-for-bit identically.
        """
        best = None
        for w in range(self.n_workers):
            if w == exclude or self._retired[w]:
                continue
            until = self._drained_until[w]
            if until is not None:
                if until > now:
                    continue
                self._drained_until[w] = None
                self._consec_failures[w] = max(0, self.breaker_threshold - 1)
            if best is None or self._worker_free[w] < self._worker_free[best]:
                best = w
        return best

    def _replace_worker(self, worker: int, now: float) -> None:
        """Swap a dead worker for a fresh replica on the shared cache.

        Mirrors :func:`repro.train.run_elastic`'s replace-recovery: the
        replacement joins the rotation immediately with nothing installed
        (version sentinel ``-1``), so its first batch installs whatever
        version that batch is pinned to — not merely the current one.
        Cached programs survive: they are keyed by batch shape and rebind
        parameters on every replay.
        """
        self.workers[worker] = CHGNetModel(
            self.model.config, np.random.default_rng(worker)
        )
        self._worker_params[worker] = self.workers[worker].parameters()
        self._worker_version[worker] = -1
        if self.compilers is not None:
            self.compilers[worker] = InferenceCompiler(
                self.workers[worker], cache=self.cache
            )
        self._dead.discard(worker)
        self._consec_failures[worker] = 0
        self._drained_until[worker] = None
        self._retired[worker] = False
        self._worker_free[worker] = max(self._worker_free[worker], now)
        self.stats.worker_replacements += 1

    # ------------------------------------------------------------- elasticity
    @property
    def fleet_size(self) -> int:
        """Workers in (or admissible to) the dispatch rotation.

        Retired workers and permanently drained dead ones don't count;
        breaker-tripped workers do (they re-admit after cooldown).
        """
        return sum(
            1
            for w in range(self.n_workers)
            if not self._retired[w] and self._drained_until[w] != float("inf")
        )

    def fleet_idle(self, now: float) -> bool:
        """Whether every active worker's virtual clock is at or behind ``now``."""
        return all(
            self._worker_free[w] <= now
            for w in range(self.n_workers)
            if not self._retired[w] and self._drained_until[w] != float("inf")
        )

    def add_worker(self, now: float | None = None) -> int:
        """Scale out by one worker; returns its index.

        A retired slot is reactivated first (its replica and compiler are
        still warm); otherwise a fresh replica joins on the shared
        program cache — programs are keyed by batch shape and rebind
        parameters per replay, so growing the fleet captures **nothing**.
        The new worker installs whatever version its first batch is
        pinned to (sentinel ``-1``), mirroring :meth:`_replace_worker`.
        """
        now = self._advance(now)
        for w in range(self.n_workers):
            if self._retired[w] and w not in self._dead:
                self._retired[w] = False
                self._consec_failures[w] = 0
                self._drained_until[w] = None
                self._worker_free[w] = max(self._worker_free[w], now)
                self.stats.scale_outs += 1
                return w
        w = self.n_workers
        replica = CHGNetModel(self.model.config, np.random.default_rng(w))
        self.workers.append(replica)
        self._worker_params.append(replica.parameters())
        self._worker_version.append(-1)
        self._worker_free.append(now)
        self._consec_failures.append(0)
        self._drained_until.append(None)
        self._retired.append(False)
        if self.compilers is not None:
            self.compilers.append(InferenceCompiler(replica, cache=self.cache))
        self.n_workers += 1
        self.stats.scale_outs += 1
        return w

    def retire_worker(self, worker: int | None = None) -> int | None:
        """Drain-and-retire one worker; returns its index (``None`` if not
        possible).

        The worker leaves the dispatch rotation immediately — modeled
        work already on its virtual clock finishes (dispatched batches
        always complete) and nothing new lands on it.  Its replica stays
        in place so a later :meth:`add_worker` can reactivate the slot
        (indices stay stable for fault plans and per-worker stats).  The
        last active worker is never retired.
        """
        if worker is None:
            candidates = [
                w
                for w in reversed(range(self.n_workers))
                if not self._retired[w]
                and w not in self._dead
                and self._drained_until[w] != float("inf")
            ]
            worker = candidates[0] if candidates else None
        if worker is None or self._retired[worker] or self.fleet_size <= 1:
            return None
        self._retired[worker] = True
        self.stats.scale_ins += 1
        return worker

    def _dispatch(self, group: list[_Pending], now: float) -> None:
        """Serve one collated group, surviving planned worker faults.

        The fault-free path is unchanged: one dispatch to the worker whose
        virtual clock frees first.  Under a fault plan a dispatch may
        instead *discover* a killed or flaking worker — a typed
        :class:`~repro.serve.faults.WorkerFailure` before any result is
        written — after which the whole group re-queues onto the surviving
        rotation with exponential backoff priced on the virtual clock,
        shedding only requests that exhausted ``max_retries``.
        """
        version = group[0].version
        for pending in group:
            self._tenant_pending[pending.tenant] -= 1
        if self.fair:
            # Advance virtual time to the *head's* start tag — the tag the
            # dispatch decision was made on.  Companions sliced from the
            # same queue to fill the batch may carry much higher tags;
            # advancing past them would catapult the clock ahead of the
            # whole backlog and tag later light-tenant arrivals behind it.
            self.scheduler.advance(min(p.tag for p in group))
        attempt = 0
        while group:
            dispatch = self._dispatches
            self._dispatches += 1
            if self.fault_plan is not None:
                self._dead.update(self.fault_plan.take_kills(dispatch))
            worker = self._pick_worker(now)
            if worker is None:
                # The whole rotation is drained; wait out the earliest
                # finite cooldown on the virtual clock.
                wake = min(
                    (u for u in self._drained_until if u is not None and u != float("inf")),
                    default=None,
                )
                if wake is None and any(
                    self._retired[w] and w not in self._dead
                    for w in range(self.n_workers)
                ):
                    # Every active worker is gone but a healthy retired
                    # slot remains — an emergency scale-out beats a
                    # terminal shed (the autoscaler composing with a
                    # fault plan can hit exactly this corner).
                    self.add_worker(now)
                    worker = self._pick_worker(now)
                elif wake is None:
                    # Every worker is permanently dead and irreplaceable.
                    for pending in group:
                        self._failed[pending.request_id] = WorkerFailure(
                            -1, dispatch, pending.request_id
                        )
                        self.stats.failed += 1
                        self.stats.tenant(pending.tenant).failed += 1
                    return
                else:
                    now = max(now, wake)
                    worker = self._pick_worker(now)
            failed = worker in self._dead or (
                self.fault_plan is not None
                and self.fault_plan.take_flake(worker, dispatch)
            )
            if failed:
                self.stats.worker_failures += 1
                self._consec_failures[worker] += 1
                if worker in self._dead:
                    # A kill is unambiguous: out of rotation for good, or
                    # replaced in place when the engine is elastic.
                    if self.replace_workers:
                        self._replace_worker(worker, now)
                    else:
                        self._drained_until[worker] = float("inf")
                elif self._consec_failures[worker] >= self.breaker_threshold:
                    self._drained_until[worker] = now + self.breaker_cooldown
                survivors = []
                for pending in group:
                    pending.retries += 1
                    if pending.retries > self.max_retries:
                        self._failed[pending.request_id] = WorkerFailure(
                            worker, dispatch, pending.request_id
                        )
                        self.stats.failed += 1
                        self.stats.tenant(pending.tenant).failed += 1
                    else:
                        self.stats.retries += 1
                        survivors.append(pending)
                group = survivors
                now += self.retry_backoff * (2.0**attempt)
                attempt += 1
                continue
            self._consec_failures[worker] = 0
            self._evaluate(group, worker, version, dispatch, now)
            return

    def _evaluate(
        self,
        group: list[_Pending],
        worker: int,
        version: int,
        dispatch: int,
        now: float,
    ) -> None:
        """Evaluate a group on ``worker`` (optionally hedged) and record results."""
        batch = self._collate_group([p.graph for p in group])
        self._ensure_version(worker, version)
        before = (
            self.cache.hits if self.cache is not None else 0,
            self.cache.misses if self.cache is not None else 0,
        )
        t0 = time.perf_counter()
        out = self._eval_batch(worker, batch)
        measured = time.perf_counter() - t0
        skew = (
            self.fault_plan.skew(worker, dispatch)
            if self.fault_plan is not None
            else 0.0
        )
        start = max(self._worker_free[worker], now)
        finish = start + measured + skew
        served_by, served_at = worker, finish
        if self.hedge and (skew > 0.0 or start - now > self.hedge_after):
            # Duplicate the stuck batch onto the idlest healthy worker and
            # keep the first modeled completion.  Both clocks advance: the
            # loser's work is not free, it is the price of the hedge.
            other = self._pick_worker(now, exclude=worker)
            if other is not None and other not in self._dead:
                self.stats.hedges += 1
                self._ensure_version(other, version)
                t1 = time.perf_counter()
                hedge_out = self._eval_batch(other, batch)
                hedge_measured = time.perf_counter() - t1
                hedge_skew = (
                    self.fault_plan.skew(other, dispatch)
                    if self.fault_plan is not None
                    else 0.0
                )
                hedge_finish = (
                    max(self._worker_free[other], now) + hedge_measured + hedge_skew
                )
                self._worker_free[other] = hedge_finish
                if hedge_finish < finish:
                    # Bit-identity makes the winner's bits equal the
                    # loser's, so keeping either output is safe.
                    self.stats.hedge_wins += 1
                    out, served_by, served_at = hedge_out, other, hedge_finish
        if self.cache is not None:
            self.stats.cache_hits += self.cache.hits - before[0]
            self.stats.cache_misses += self.cache.misses - before[1]
        dims_list = [p.dims for p in group]
        raw = sum(workload_cost(*d) for d in dims_list)
        padded = (
            workload_cost(
                *group_padded_targets(dims_list, seeds=self._canonical_seeds(dims_list))
            )
            if self.compilers is not None
            else raw
        )
        self.stats.raw_cost += raw
        self.stats.padded_cost += padded
        if len({workload_tier(d) for d in dims_list}) > 1:
            self.stats.merged_batches += 1
        self._worker_free[worker] = finish
        self.stats.batches += 1
        offsets = batch.atom_offsets
        for i, pending in enumerate(group):
            a0, a1 = int(offsets[i]), int(offsets[i + 1])
            e_pa = float(out["energy"][i])
            latency = served_at - pending.submitted
            self.stats.latencies.append(latency)
            self.stats.record_class_latency(pending.cls, latency)
            if self.autoscaler is not None:
                self.autoscaler.record(pending.cls, latency)
            ts = self.stats.tenant(pending.tenant)
            ts.served += 1
            ts.latencies.append(latency)
            pending_cost = workload_cost(*pending.dims)
            ts.raw_cost += pending_cost
            # Padded batch cost is priced per batch; attribute each
            # request its raw-cost-proportional share so tenant blocks
            # sum to the global counter.
            ts.padded_cost += padded * pending_cost / raw if raw else 0
            self._results[pending.request_id] = Prediction(
                request_id=pending.request_id,
                energy=e_pa * (a1 - a0),
                energy_per_atom=e_pa,
                forces=out["forces"][a0:a1].copy(),
                stress=out["stress"][i].copy(),
                magmom=out["magmom"][a0:a1].copy(),
                worker=served_by,
                batch_structs=len(group),
                latency=latency,
                version=version,
            )

    # ----------------------------------------------------------------- stats
    def makespan(self) -> float:
        """Latest worker-finish time on the virtual clock."""
        return max(self._worker_free)

    def compile_stats(self) -> dict[str, int] | None:
        """Aggregated per-worker compiler counters (``None`` when eager)."""
        if self.compilers is None:
            return None
        totals: dict[str, int] = {}
        for compiler in self.compilers:
            for key, value in compiler.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def snapshot(self) -> dict:
        """One flat dict of serving + compiler counters (for benches/CLI)."""
        merged = self.stats.as_dict()
        comp = self.compile_stats()
        if comp is not None:
            merged.update(comp)
        return merged

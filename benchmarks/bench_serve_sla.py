"""Multi-tenant SLA serving benchmark: fairness beats FIFO for latency.

Replays one mixed two-tenant stream — a screening tenant's bulk burst
(everything at t=0) plus an analyst tenant's interactive trickle arriving
while the backlog drains — against two engines with the **same worker
fleet**:

* **FIFO baseline** — the pre-tenancy engine: one FIFO per tier queue,
  one global flush wait, dispatch the moment a group is ready.  The bulk
  burst lands on the worker virtual clocks first, so every interactive
  arrival pays the whole backlog's modeled makespan.
* **SLA engine** — request classes (interactive flushes 5x sooner),
  start-time weighted-fair queuing across tenants, paced dispatch (work
  is held in the scheduler until a worker's virtual clock is actually
  free, so later low-tag arrivals can overtake the backlog).

The headline number is the **interactive-class modeled p95 ratio**
(FIFO / SLA), which must be **>= 2x** — scheduling, not hardware, buys
the latency.  Both runs must stay **bit-identical** to solo eager
inference per structure (the row-stable kernel contract is what licenses
reordering), and the shared harness invariants (conservation, per-tenant
accounting sums to the global stats) must hold.  A third run shows
load-driven elasticity: a 1-worker fleet under the same stream breaches
the interactive SLA and scales out via the shared program cache.

Writes ``BENCH_serve_sla.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` runs the medium workload only; the
tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_sla.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

from serve_harness import Arrival, check_conservation, check_tenant_sums, drive

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.mptrj import generate_mptrj
from repro.graph.crystal_graph import build_graph
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.serve import (
    AutoscaleConfig,
    ClassPolicy,
    InferenceEngine,
    TenantPolicy,
    percentile,
)

WORKLOADS = {
    "medium": {
        "bulk_requests": 96,
        "interactive_requests": 8,
        "structures": 8,
        "max_atoms": 6,
        "batch_structs": 4,
        "workers": 2,
        "dim": 8,
    },
    "large": {
        "bulk_requests": 160,
        "interactive_requests": 12,
        "structures": 12,
        "max_atoms": 8,
        "batch_structs": 8,
        "workers": 2,
        "dim": 16,
    },
}

#: Acceptance floor: the SLA engine's interactive modeled p95 must beat
#: the FIFO baseline by at least this factor at equal worker count.
P95_FLOOR = 2.0

#: The stream's virtual timescale is calibrated to the *measured* batch
#: service time s (from the oracle run): interactive arrivals trickle in
#: every ~s while the bulk backlog (many batches per worker) drains, and
#: the global flush wait is s/2 (interactive class: s/10).  That keeps
#: queueing behind the backlog — not flush waiting — the dominant term
#: in FIFO's interactive p95 on any machine, fast or slow.


def _model(dim: int) -> CHGNetModel:
    model = CHGNetModel(
        CHGNetConfig(
            atom_fea_dim=dim,
            bond_fea_dim=dim,
            angle_fea_dim=dim,
            num_radial=5,
            angular_order=2,
            hidden_dim=dim,
            opt_level=OptLevel.DECOMPOSE_FS,
        ),
        np.random.default_rng(1),
    )
    # Un-zero the zero-initialized readout heads so bitwise-equality checks
    # compare real (non-zero) energies/forces.
    rng = np.random.default_rng(7)
    for p in model.parameters():
        p.data += rng.normal(scale=0.05, size=p.data.shape)
    return model


def _graphs(workload: dict, config: CHGNetConfig) -> list:
    """Unique perturbed structures for the whole stream."""
    pool = generate_mptrj(
        workload["structures"], seed=3, max_atoms=workload["max_atoms"]
    )
    crystals = [
        pool[i % len(pool)].crystal.perturbed(np.random.default_rng(50 + i), 0.02)
        for i in range(workload["bulk_requests"] + workload["interactive_requests"])
    ]
    return [build_graph(c, config.cutoff_atom, config.cutoff_bond) for c in crystals]


def _traffic(workload: dict, graphs: list, spacing: float) -> list[Arrival]:
    """Bulk burst at t=0 + interactive trickle every ``spacing`` seconds."""
    bulk = [
        Arrival(time=0.0, tenant="screening", request_class="bulk", graph=g)
        for g in graphs[: workload["bulk_requests"]]
    ]
    trickle = [
        Arrival(
            time=spacing * (i + 1),
            tenant="analyst",
            request_class="interactive",
            graph=g,
        )
        for i, g in enumerate(graphs[workload["bulk_requests"] :])
    ]
    return sorted(bulk + trickle, key=lambda a: a.time)


def _fifo_engine(
    model: CHGNetModel, workload: dict, max_wait: float
) -> InferenceEngine:
    """The pre-tenancy baseline: one FIFO, one global wait, no pacing.

    Both classes are declared with no overrides so the labels are
    accepted but change nothing — exactly the engine ISSUE 10 replaces.
    Eager (uncompiled) workers keep the measured service time free of
    one-off capture spikes, so both runs price batches the same way.
    """
    return InferenceEngine(
        model,
        n_workers=workload["workers"],
        compile=False,
        max_batch_structs=workload["batch_structs"],
        max_wait=max_wait,
        classes={
            "interactive": ClassPolicy("interactive"),
            "bulk": ClassPolicy("bulk"),
        },
    )


def _sla_engine(
    model: CHGNetModel, workload: dict, max_wait: float, **kwargs
) -> InferenceEngine:
    return InferenceEngine(
        model,
        n_workers=kwargs.pop("n_workers", workload["workers"]),
        compile=False,
        max_batch_structs=workload["batch_structs"],
        max_wait=max_wait,
        tenants=[
            TenantPolicy("screening", weight=1.0),
            TenantPolicy("analyst", weight=4.0),
        ],
        paced=True,
        **kwargs,
    )


def _class_p95(result, request_class: str) -> float:
    latencies = [
        result.predictions[rid].latency
        for rid, arrival in result.accepted.items()
        if arrival.request_class == request_class and rid in result.predictions
    ]
    return percentile(latencies, 95)


def _bit_identical(result, oracle: dict) -> bool:
    return all(
        pred.energy == oracle[id(result.accepted[rid].graph)].energy
        and np.array_equal(pred.forces, oracle[id(result.accepted[rid].graph)].forces)
        and np.array_equal(pred.stress, oracle[id(result.accepted[rid].graph)].stress)
        and np.array_equal(pred.magmom, oracle[id(result.accepted[rid].graph)].magmom)
        for rid, pred in result.predictions.items()
    )


def _invariants_hold(engine, result, traffic) -> bool:
    try:
        check_conservation(engine, result, traffic)
        check_tenant_sums(engine)
    except AssertionError:
        return False
    return True


def bench_workload(name: str, workload: dict) -> dict:
    model = _model(workload["dim"])
    graphs = _graphs(workload, model.config)

    # Solo eager inference: the bit-identity oracle for every structure —
    # and the timescale calibration: the stream's virtual arrival spacing
    # and flush waits are set from the measured per-batch service time so
    # the scheduling contrast survives machine-speed differences.
    eager = InferenceEngine(model, n_workers=1, compile=False, max_batch_structs=1)
    t0 = time.perf_counter()
    eager_preds = eager.predict_many(graphs)
    per_struct = (time.perf_counter() - t0) / len(graphs)
    oracle = {id(g): p for g, p in zip(graphs, eager_preds)}
    service = per_struct * workload["batch_structs"]
    spacing = service
    max_wait = service / 2.0
    traffic = _traffic(workload, graphs, spacing)

    fifo = _fifo_engine(model, workload, max_wait)
    fifo_result = drive(fifo, traffic)
    fifo_p95 = _class_p95(fifo_result, "interactive")

    sla = _sla_engine(model, workload, max_wait)
    sla_result = drive(sla, traffic)
    sla_p95 = _class_p95(sla_result, "interactive")
    sla_snap = sla.snapshot()

    # Elasticity: a 1-worker fleet under the same stream breaches the
    # interactive SLA and scales out.  Fair scheduling alone already gets
    # interactive p95 under one full batch service on a single worker, so
    # the SLA is set at half a batch service — achievable only when the
    # trickle stops queueing behind the residual bulk backlog, i.e. with
    # more workers.
    auto = _sla_engine(
        model,
        workload,
        max_wait,
        n_workers=1,
        autoscale=AutoscaleConfig(
            sla_p95=service / 2.0,
            breach_scans=2,
            min_samples=4,
            max_workers=workload["workers"] + 1,
        ),
    )
    auto_result = drive(auto, traffic)
    auto_p95 = _class_p95(auto_result, "interactive")

    ratio = fifo_p95 / sla_p95 if sla_p95 > 0 else float("inf")
    return {
        "workload": name,
        "workers": workload["workers"],
        "requests": len(traffic),
        "interactive_requests": workload["interactive_requests"],
        "measured_batch_service": service,
        "fifo_interactive_p95": fifo_p95,
        "sla_interactive_p95": sla_p95,
        "interactive_p95_ratio": ratio,
        "meets_p95_floor": ratio >= P95_FLOOR,
        "fifo_bit_identical": _bit_identical(fifo_result, oracle),
        "sla_bit_identical": _bit_identical(sla_result, oracle),
        "fifo_invariants": _invariants_hold(fifo, fifo_result, traffic),
        "sla_invariants": _invariants_hold(sla, sla_result, traffic),
        "sla_tenants": sla_snap["tenants"],
        "sla_class_p95": sla_snap["class_latency_p95"],
        "autoscale_scale_outs": auto.stats.scale_outs,
        "autoscale_scale_ins": auto.stats.scale_ins,
        "autoscale_fleet_size": auto.fleet_size,
        "autoscale_interactive_p95": auto_p95,
        "autoscale_bit_identical": _bit_identical(auto_result, oracle),
        "autoscale_invariants": _invariants_hold(auto, auto_result, traffic),
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    names = ["medium"] if args.smoke else ["medium", "large"]
    results = {
        "mode": "smoke" if args.smoke else "full",
        "p95_floor": P95_FLOOR,
        "workloads": {name: bench_workload(name, WORKLOADS[name]) for name in names},
    }
    medium = results["workloads"]["medium"]
    results["medium_interactive_p95_ratio"] = medium["interactive_p95_ratio"]
    results["medium_meets_p95_floor"] = medium["meets_p95_floor"]
    results["medium_sla_bit_identical"] = medium["sla_bit_identical"]
    results["medium_sla_invariants"] = medium["sla_invariants"]

    out_path = args.out or (output_dir() / "BENCH_serve_sla.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    rows = [
        [
            r["workload"],
            str(r["workers"]),
            f"{r['fifo_interactive_p95'] * 1e3:.1f}ms",
            f"{r['sla_interactive_p95'] * 1e3:.1f}ms",
            f"{r['interactive_p95_ratio']:.1f}x",
            "bit-equal" if r["sla_bit_identical"] else "DIVERGED",
            "hold" if r["sla_invariants"] else "VIOLATED",
            f"+{r['autoscale_scale_outs']}/-{r['autoscale_scale_ins']}",
        ]
        for r in results["workloads"].values()
    ]
    emit(
        "serve_sla",
        format_table(
            [
                "workload",
                "workers",
                "FIFO p95",
                "SLA p95",
                "speedup",
                "oracle",
                "invariants",
                "autoscale",
            ],
            rows,
            title="Multi-tenant SLA serving (interactive p95, FIFO vs weighted-fair)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

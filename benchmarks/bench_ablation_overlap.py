"""Ablation — communication overlap (Section III-C "Other Optimization").

The paper overlaps the gradient allreduce with backward compute instead of
waiting for all gradients.  This bench quantifies the exposed communication
time with blocking (1 bucket) vs overlapped (8/16 buckets) allreduce across
cluster sizes, using the alpha-beta ring model at A100-scale compute.

Shape to reproduce: overlap hides most of the communication; the benefit
grows with rank count (where comm is larger and compute per rank smaller).
"""

from __future__ import annotations

from repro.bench.reporting import emit, format_table
from repro.comm import ClusterSpec, simulate_overlap

GRAD_BYTES = 3_430_000  # ~429k params in float64
BACKWARD_BY_WORLD = {4: 0.30, 8: 0.15, 16: 0.075, 32: 0.0375}  # strong scaling


def test_ablation_overlap(benchmark):
    spec = ClusterSpec(gpus_per_node=4)

    def run():
        out = {}
        for world, backward in BACKWARD_BY_WORLD.items():
            out[world] = {
                buckets: simulate_overlap(backward, GRAD_BYTES, world, spec, n_buckets=buckets)
                for buckets in (1, 8, 16)
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for world, by_buckets in results.items():
        blocking = by_buckets[1]
        overlapped = by_buckets[8]
        rows.append(
            [
                str(world),
                f"{blocking.comm_time * 1e3:.2f}",
                f"{blocking.exposed_comm * 1e3:.2f}",
                f"{overlapped.exposed_comm * 1e3:.2f}",
                f"{by_buckets[16].exposed_comm * 1e3:.2f}",
                f"{(1 - overlapped.exposed_comm / max(blocking.exposed_comm, 1e-12)) * 100:.0f}%",
            ]
        )
    table = format_table(
        ["GPUs", "raw comm (ms)", "exposed blocking (ms)", "exposed 8 buckets (ms)", "exposed 16 buckets (ms)", "hidden by overlap"],
        rows,
        title="Ablation — bucketed communication overlap vs blocking allreduce",
    )
    emit("ablation_overlap", table)

    for world, by_buckets in results.items():
        assert by_buckets[8].exposed_comm <= by_buckets[1].exposed_comm + 1e-12
        assert by_buckets[16].exposed_comm <= by_buckets[8].exposed_comm + 1e-9
    # Overlap always helps, but the hideable fraction is the *bandwidth*
    # part: every bucket pays its own 2(p-1)*alpha ring latency, which
    # cannot overlap away.  So hiding is strongest where bandwidth
    # dominates (8 GPUs, first inter-node size) and saturates at larger
    # rank counts — a real bucket-count trade-off DDP tunes for.
    assert all(
        by[8].exposed_comm < 0.85 * by[1].exposed_comm for by in results.values()
    )
    assert results[8][8].exposed_comm < 0.55 * results[8][1].exposed_comm

"""Fig. 9 — per-rank workload variance: default vs load-balance sampler.

Paper: with mini-batch 32 on 4 GPUs the coefficient of variation of the
per-rank feature number (atoms + bonds + angles) is 0.186 with the default
sampler and 0.064 with the load-balance sampler.

Shape to reproduce: CoV drops by roughly 3x; the per-iteration feature
numbers hug the mean far more tightly under the balanced sampler.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.workloads import wide_feature_numbers
from repro.data import DefaultSampler, LoadBalanceSampler, imbalance_study

WORLD = 4
GLOBAL_BATCH = 128  # paper: mini-batch 32 per GPU x 4 GPUs


def test_fig9_load_balance(benchmark):
    features = wide_feature_numbers().sum(axis=1)  # atoms + bonds + angles

    def study():
        default = DefaultSampler(features, GLOBAL_BATCH, WORLD, seed=0)
        balanced = LoadBalanceSampler(features, GLOBAL_BATCH, WORLD, seed=0)
        return (
            imbalance_study(default, epochs=4),
            imbalance_study(balanced, epochs=4),
        )

    res_default, res_balanced = benchmark.pedantic(study, rounds=1, iterations=1)

    cov_d = float(res_default["cov"].mean())
    cov_b = float(res_balanced["cov"].mean())
    spread_d = res_default["loads"].max(axis=1) - res_default["loads"].min(axis=1)
    spread_b = res_balanced["loads"].max(axis=1) - res_balanced["loads"].min(axis=1)

    table = format_table(
        ["sampler", "mean CoV", "paper CoV", "mean max-min spread (features)"],
        [
            ["default", f"{cov_d:.3f}", "0.186", f"{spread_d.mean():.0f}"],
            ["load-balance", f"{cov_b:.3f}", "0.064", f"{spread_b.mean():.0f}"],
            ["reduction", f"{cov_d / max(cov_b, 1e-12):.2f}x", "2.9x", "-"],
        ],
        title="Fig. 9 — per-rank workload imbalance (4 ranks)",
    )
    lines = ["\nper-iteration rank loads (first 6 iterations):", "iter  default(min..max)      balanced(min..max)"]
    for i in range(min(6, len(res_default["loads"]))):
        d = res_default["loads"][i]
        b = res_balanced["loads"][i]
        lines.append(
            f"{i:4d}  {d.min():7.0f}..{d.max():7.0f}      {b.min():7.0f}..{b.max():7.0f}"
        )
    emit("fig9_load_balance", table + "\n```" + "\n".join(lines) + "\n```")

    # Shape: the load-balance sampler cuts CoV substantially (paper: 2.9x;
    # this corpus has a heavier tail relative to batch size, see DESIGN.md).
    assert cov_b < cov_d / 1.7

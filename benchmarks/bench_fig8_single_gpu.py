"""Fig. 8 — single-GPU step-by-step optimization: time, kernels, memory.

Paper (A100, batch 16/32/64):

* (a) average iteration time drops 4.43-5.62x from baseline to decompose_fs
  (e.g. batch 64: 1.067 s -> 0.424 -> 0.358 -> 0.190);
* (b) launched kernels drop 12.72-20.16x (batch 64: 72,659 -> 11,481 ->
  8,543 -> 3,604);
* (c) memory drops 3.38-3.59x at decompose_fs (batch 64: 16.09 GB -> 4.48),
  with a slight increase from the parallel basis (padding) and a slight
  decrease from fusion.

This bench measures full *training* iterations (forward + loss + backward +
Adam) per optimization level at (scaled) batch sizes, collecting wall time
via pytest-benchmark and kernels/tape-memory via the device profiler.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.reporting import emit, format_table, output_dir
from repro.bench.workloads import profiling_batchset, training_splits
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.runtime import device_profile
from repro.train import CompositeLoss, Adam

BATCH_SIZES = (8, 16, 32)  # paper: 16/32/64, scaled to the CPU substrate
_RESULTS: dict[tuple[int, str], dict] = {}


def _step_factory(level: OptLevel, batch):
    model = CHGNetModel(CHGNetConfig(opt_level=level), np.random.default_rng(1))
    loss_fn = CompositeLoss()
    optimizer = Adam(model.parameters(), lr=3e-4)

    def step():
        model.zero_grad()
        out = model.forward(batch, training=True)
        loss_fn(out, batch).loss.backward()
        optimizer.step()

    return step


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("level", list(OptLevel), ids=[l.name for l in OptLevel])
def test_training_iteration(benchmark, batch_size, level):
    import time

    batch = profiling_batchset(batch_size, seed=batch_size)
    step = _step_factory(level, batch)
    step()  # warm-up (also first Adam step)
    with device_profile() as prof:
        t0 = time.perf_counter()
        step()
        elapsed = time.perf_counter() - t0
    benchmark.pedantic(step, rounds=1, iterations=1)
    _RESULTS[(batch_size, level.name)] = {
        "time": elapsed,
        "kernels": prof.kernels.count,
        "peak_mib": prof.memory.peak_mib,
    }


def test_report_fig8(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for metric, fmt, title, paper_note in (
        ("time", "{:.3f}", "Fig. 8(a) avg iteration time (s)", "paper bs64: 1.067/0.424/0.358/0.190 s"),
        ("kernels", "{:d}", "Fig. 8(b) launched kernels", "paper bs64: 72,659/11,481/8,543/3,604"),
        ("peak_mib", "{:.1f}", "Fig. 8(c) tape memory (MiB)", "paper bs64: 16.09/16.19/15.07/4.48 GB"),
    ):
        rows = []
        for bs in BATCH_SIZES:
            row = [str(bs)]
            for level in OptLevel:
                val = _RESULTS.get((bs, level.name), {}).get(metric)
                row.append("-" if val is None else fmt.format(val))
            base = _RESULTS.get((bs, OptLevel.BASELINE.name), {}).get(metric)
            last = _RESULTS.get((bs, OptLevel.DECOMPOSE_FS.name), {}).get(metric)
            row.append(f"{base / last:.2f}x" if base and last else "-")
            rows.append(row)
        table = format_table(
            ["batch", *[l.name for l in OptLevel], "reduction"],
            rows,
            title=f"{title} — {paper_note}",
        )
        emit(f"fig8_{metric}", table)

    (output_dir() / "fig8_raw.json").write_text(
        json.dumps({f"{bs}:{lv}": v for (bs, lv), v in _RESULTS.items()}, indent=2)
    )

    # Shape assertions (paper's directional claims):
    for bs in BATCH_SIZES:
        if (bs, "BASELINE") not in _RESULTS:
            continue
        base = _RESULTS[(bs, "BASELINE")]
        fused = _RESULTS[(bs, "FUSED")]
        fs = _RESULTS[(bs, "DECOMPOSE_FS")]
        assert fs["time"] < base["time"], f"decompose_fs must be fastest (bs={bs})"
        assert fs["kernels"] < fused["kernels"] < base["kernels"]
        assert fs["peak_mib"] < 0.7 * base["peak_mib"], "memory must drop sharply"

"""Graph-pipeline benchmark: neighbor search, MD skin reuse, collate.

Quantifies the three layers of the graph-pipeline overhaul:

1. **Neighbor search scaling** — O(N^2 * images) dense scan vs the O(N)
   cell list on growing rocksalt supercells.
2. **MD steps/sec** — the seed's loop (graph rebuilt from scratch *twice*
   per step: once for forces, once more for the potential-energy record)
   vs the overhauled loop (single evaluation per step + Verlet skin-list
   neighbor reuse).
3. **Collate throughput** — the seed's per-graph-copy + ``np.concatenate``
   assembly vs the preallocating single-pass collate, plus the memoized
   mode that reuses assembled batches for repeated index tuples.

Writes ``BENCH_graph_pipeline.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes/repeats so the whole run
takes seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_graph_pipeline.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.mptrj import generate_mptrj
from repro.graph.batching import collate
from repro.graph.crystal_graph import build_graph
from repro.graph.reference import collate_concat as _collate_concat
from repro.md import ModelCalculator, MolecularDynamics
from repro.model import CHGNetConfig, CHGNetModel
from repro.structures import cscl, neighbor_list, rocksalt


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls after one warmup (the warmup
    absorbs first-call allocator/page-cache effects that would otherwise
    skew single-shot timings)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------- layer 1
def bench_neighbor_search(smoke: bool) -> list[dict]:
    reps = [(2, 2, 2), (3, 3, 3), (4, 4, 4), (5, 5, 5)] if smoke else [
        (2, 2, 2), (3, 3, 3), (4, 4, 4), (5, 5, 5), (6, 6, 6)
    ]
    repeats = 1 if smoke else 3
    rows = []
    for rep in reps:
        crystal = rocksalt(3, 8).supercell(rep)
        t_dense = _best_of(lambda: neighbor_list(crystal, 6.0, algorithm="dense"), repeats)
        t_cell = _best_of(lambda: neighbor_list(crystal, 6.0, algorithm="cell"), repeats)
        pairs = neighbor_list(crystal, 6.0, algorithm="cell").num_pairs
        rows.append(
            {
                "atoms": crystal.num_atoms,
                "cutoff": 6.0,
                "pairs": pairs,
                "dense_s": t_dense,
                "cell_s": t_cell,
                "speedup": t_dense / t_cell,
            }
        )
    return rows


# --------------------------------------------------------------- layer 2
def _seed_md_loop(md: MolecularDynamics, calc: ModelCalculator, n_steps: int) -> None:
    """The seed's per-step cost: integrator step + a second full evaluation
    (graph rebuilt from scratch) just to record the potential energy."""
    for _ in range(n_steps):
        md.state = md.integrator.step(md.state, md.calculator)
        calc.calculate(md.state.crystal)


def bench_md(smoke: bool, skin: float = 0.5) -> dict:
    n_steps = 12 if smoke else 30
    # Reduced-width model so the measurement exposes the *pipeline* cost the
    # overhaul targets (a production-width forward pass would mask it).
    config = CHGNetConfig(
        atom_fea_dim=8,
        bond_fea_dim=8,
        angle_fea_dim=8,
        num_radial=4,
        angular_order=2,
        hidden_dim=8,
    )
    crystal = cscl(11, 17).supercell((3, 3, 3))

    def timed(calculator: ModelCalculator, seed_loop: bool) -> float:
        md = MolecularDynamics(
            crystal, calculator, timestep_fs=1.0, temperature_k=300.0, seed=0
        )
        md.run(1)  # warm (also primes the skin cache)
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            if seed_loop:
                _seed_md_loop(md, calculator, n_steps)
            else:
                md.run(n_steps)
            best = min(best, time.perf_counter() - t0)
        return n_steps / best

    model = CHGNetModel(config, np.random.default_rng(0))
    baseline = timed(ModelCalculator(model), seed_loop=True)
    plain = timed(ModelCalculator(model), seed_loop=False)
    skin_calc = ModelCalculator(model, skin=skin)
    skinned = timed(skin_calc, seed_loop=False)
    cache = skin_calc._cache  # None when --skin 0 (reuse disabled)
    return {
        "atoms": crystal.num_atoms,
        "steps": n_steps,
        "skin": skin,
        "seed_steps_per_s": baseline,
        "single_eval_steps_per_s": plain,
        "skin_steps_per_s": skinned,
        "speedup_single_eval": plain / baseline,
        "speedup_total": skinned / baseline,
        "cache_builds": cache.num_builds if cache else 0,
        "cache_reuses": cache.num_reuses if cache else 0,
    }


# --------------------------------------------------------------- layer 3
def bench_collate(smoke: bool) -> dict:
    n_structs = 32 if smoke else 96
    iters = 80 if smoke else 200
    entries = generate_mptrj(n_structs, seed=5, max_atoms=12)
    graphs = [build_graph(e.crystal) for e in entries]
    labels = [e.labels for e in entries]

    _collate_concat(graphs, labels)  # warm
    t0 = time.perf_counter()
    for _ in range(iters):
        _collate_concat(graphs, labels)
    t_legacy = (time.perf_counter() - t0) / iters
    t0 = time.perf_counter()
    for _ in range(iters):
        collate(graphs, labels)
    t_zero_copy = (time.perf_counter() - t0) / iters

    from repro.data.dataset import StructureDataset

    ds = StructureDataset(entries, memoize_batches=True)
    idx = list(range(n_structs))
    ds.batch(idx)  # assemble once
    t0 = time.perf_counter()
    for _ in range(iters):
        ds.batch(idx)
    t_memo = (time.perf_counter() - t0) / iters
    return {
        "batch_size": n_structs,
        "iters": iters,
        "legacy_s": t_legacy,
        "zero_copy_s": t_zero_copy,
        "memoized_s": t_memo,
        "speedup_zero_copy": t_legacy / t_zero_copy,
        "speedup_memoized": t_legacy / t_memo,
    }


# ------------------------------------------------------------------ main
def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--skin", type=float, default=0.5, help="Verlet skin radius (A)")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    results = {
        "mode": "smoke" if args.smoke else "full",
        "neighbor_search": bench_neighbor_search(args.smoke),
        "md": bench_md(args.smoke, skin=args.skin),
        "collate": bench_collate(args.smoke),
    }

    out_path = args.out or (output_dir() / "BENCH_graph_pipeline.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    rows = [
        [str(r["atoms"]), f"{r['dense_s']:.4f}", f"{r['cell_s']:.4f}", f"{r['speedup']:.1f}x"]
        for r in results["neighbor_search"]
    ]
    emit(
        "graph_pipeline_neighbors",
        format_table(
            ["atoms", "dense (s)", "cell list (s)", "speedup"],
            rows,
            title="Neighbor search scaling (cutoff 6 A)",
        ),
    )
    md = results["md"]
    co = results["collate"]
    emit(
        "graph_pipeline_md_collate",
        format_table(
            ["stage", "seed", "overhauled", "speedup"],
            [
                [
                    f"MD steps/s ({md['atoms']} atoms)",
                    f"{md['seed_steps_per_s']:.2f}",
                    f"{md['skin_steps_per_s']:.2f}",
                    f"{md['speedup_total']:.2f}x",
                ],
                [
                    f"collate (s/batch of {co['batch_size']})",
                    f"{co['legacy_s']:.5f}",
                    f"{co['zero_copy_s']:.5f}",
                    f"{co['speedup_zero_copy']:.2f}x",
                ],
                [
                    "collate memoized",
                    f"{co['legacy_s']:.5f}",
                    f"{co['memoized_s']:.6f}",
                    f"{co['speedup_memoized']:.0f}x",
                ],
            ],
            title="MD skin-list reuse and zero-copy collate",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

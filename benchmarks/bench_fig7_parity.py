"""Fig. 7 — parity (prediction vs DFT) and R-squared for energy and force.

Paper: energy R^2 = 0.9992 (CHGNet) vs 0.9997 (FastCHGNet); force
R^2 = 0.9062 vs 0.8328.  Shape to reproduce: both models fit energy much
better than force; FastCHGNet's *energy* fit is at least as good as the
reference while its head-based *force* fit is weaker.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.trained import load_trained
from repro.bench.workloads import training_splits
from repro.train import evaluate


def test_fig7_parity(benchmark):
    splits = training_splits()

    def run():
        out = {}
        for variant in ("chgnet", "fast_fs_head"):
            model, record = load_trained(variant)
            result, parity = evaluate(model, splits.test, collect_parity=True)
            out[variant] = (record, result, parity)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    paper = {"chgnet": (0.9992, 0.9062), "fast_fs_head": (0.9997, 0.8328)}
    for variant, (record, result, parity) in results.items():
        rows.append(
            [
                record["label"],
                f"{result.energy_r2:.4f}",
                f"{result.force_r2:.4f}",
                f"{paper[variant][0]:.4f} / {paper[variant][1]:.4f}",
            ]
        )
    table = format_table(
        ["model", "Energy R^2", "Force R^2", "paper E/F R^2"],
        rows,
        title="Fig. 7 — parity fit quality on the test set",
    )

    # small parity scatter excerpt (text stand-in for the figure)
    _, _, parity = results["fast_fs_head"]
    lines = ["\nFastCHGNet parity excerpt (energy per atom, truth vs prediction):"]
    for t, p in list(zip(parity.energy_true, parity.energy_pred))[:8]:
        lines.append(f"  {t:+.4f}  ->  {p:+.4f}")
    emit("fig7_parity", table + "\n```" + "\n".join(lines) + "\n```")

    # Shape assertions.  At this substrate's training scale (~10^2 steps vs
    # the paper's ~10^5) R^2 values sit near zero and their fine ordering is
    # noise, so only the robust claims are asserted: the parity data is
    # well-formed and finite for both models, and the energy predictions
    # track the truth at least as well as a mean predictor would within a
    # generous band.
    for _, result, parity in results.values():
        assert np.isfinite(result.energy_r2) and np.isfinite(result.force_r2)
    _, fast_result, fast_parity = results["fast_fs_head"]
    assert fast_parity.energy_pred.shape == fast_parity.energy_true.shape
    assert fast_parity.force_pred.shape == fast_parity.force_true.shape
    assert fast_result.energy_r2 > -5.0

"""Fig. 5 — the atom/bond/angle distribution of the (synthetic) MPtrj dataset.

Paper: all three counts follow a long-tail distribution over the 1.58 M
structures; this is what causes the load-imbalance problem the Fig. 9
sampler solves.  Reproduced shape: long tail (skewness > 0, tail ratio
max/median >> 1) for atoms, bonds and angles alike, with angles growing
fastest (the superlinear neighborhood growth the paper's intro quantifies).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats

from repro.bench.reporting import ascii_histogram, emit, format_table
from repro.bench.workloads import wide_feature_numbers


def test_fig5_distributions(benchmark):
    stats = benchmark.pedantic(wide_feature_numbers, rounds=1, iterations=1)
    atoms, bonds, angles = stats[:, 0], stats[:, 1], stats[:, 2]

    rows = []
    for name, arr in (("atoms", atoms), ("bonds", bonds), ("angles", angles)):
        rows.append(
            [
                name,
                str(arr.min()),
                f"{np.median(arr):.0f}",
                f"{arr.mean():.1f}",
                str(arr.max()),
                f"{sstats.skew(arr):.2f}",
                f"{arr.max() / max(np.median(arr), 1):.1f}",
            ]
        )
    table = format_table(
        ["quantity", "min", "median", "mean", "max", "skewness", "max/median"],
        rows,
        title="Fig. 5 — structure-size distributions (long tail expected)",
    )
    histos = "\n\n".join(
        ascii_histogram(arr, label=name)
        for name, arr in (("atoms", atoms), ("bonds", bonds), ("angles", angles))
    )
    emit("fig5_dataset", table + "\n\n```\n" + histos + "\n```")

    # Shape: long-tail (right-skewed) for every quantity, as in the paper.
    for arr in (atoms, bonds, angles):
        assert sstats.skew(arr) > 0.3
        assert arr.max() > 2.5 * np.median(arr)
    # The angle count grows fastest into the tail (superlinear neighborhood
    # growth): heavier tail than bonds, heavier than atoms.
    assert sstats.skew(angles) > sstats.skew(bonds) > sstats.skew(atoms)
    assert angles.max() > bonds.max() > atoms.max()

"""Table I — MAE of CHGNet vs FastCHGNet on the (synthetic) MPtrj test set.

Paper values (real MPtrj, 30 epochs, A100s):

    model       version   param   E(meV/atom)  F(meV/A)  S(GPa)  M(m-muB)
    CHGNet      v0.3.0    412.5K  29           68        0.314   37
    FastCHGNet  w/o head  411.2K  26           62        0.270   35
    FastCHGNet  F/S head  429.1K  16           73        0.479   36

Shape to reproduce: the three variants reach comparable accuracy; the F/S
head trades force/stress accuracy for speed (its stress MAE is the worst of
the three) while matching or beating energy; `w/o head` has slightly fewer
parameters than reference, `F/S head` slightly more.
"""

from __future__ import annotations

from repro.bench.reporting import emit, format_table
from repro.bench.trained import VARIANT_LABELS, train_variant


def _train(benchmark, variant: str) -> dict:
    return benchmark.pedantic(lambda: train_variant(variant), rounds=1, iterations=1)


def test_train_chgnet_reference(benchmark):
    record = _train(benchmark, "chgnet")
    assert record["energy_mae"] < 1.2  # sanity: far below the raw label std (~1.8 eV)


def test_train_fastchgnet_wo_head(benchmark):
    record = _train(benchmark, "fast_wo_head")
    assert record["energy_mae"] < 1.2


def test_train_fastchgnet_fs_head(benchmark):
    record = _train(benchmark, "fast_fs_head")
    assert record["energy_mae"] < 1.2


def test_report_table1(benchmark):
    records = {v: train_variant(v) for v in VARIANT_LABELS}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    paper = {
        "chgnet": ("412.5K", 29, 68, 0.314, 37),
        "fast_wo_head": ("411.2K", 26, 62, 0.270, 35),
        "fast_fs_head": ("429.1K", 16, 73, 0.479, 36),
    }
    for variant, rec in records.items():
        p = paper[variant]
        rows.append(
            [
                rec["label"],
                f"{rec['params'] / 1e3:.1f}K",
                f"{rec['energy_mae'] * 1e3:.1f}",
                f"{rec['force_mae'] * 1e3:.1f}",
                f"{rec['stress_mae']:.4f}",
                f"{rec['magmom_mae'] * 1e3:.0f}",
                f"{p[0]} / {p[1]} / {p[2]} / {p[3]} / {p[4]}",
            ]
        )
    table = format_table(
        [
            "model",
            "param",
            "Energy (meV/atom)",
            "Force (meV/A)",
            "Stress (oracle units)",
            "Magmom (m-muB)",
            "paper: param/E/F/S/M",
        ],
        rows,
        title="Table I — test-set MAE (synthetic MPtrj, scaled training)",
    )
    emit("table1_accuracy", table)

    # Shape assertions from the paper:
    fs, wo, ref = records["fast_fs_head"], records["fast_wo_head"], records["chgnet"]
    # (i) the F/S-head variant has the most parameters, w/o-head the least
    assert fs["params"] > ref["params"]
    assert wo["params"] <= ref["params"]
    # (ii) the decomposed stress head is the least accurate on stress
    assert fs["stress_mae"] >= min(wo["stress_mae"], ref["stress_mae"])
    # (iii) all variants reach comparable energy accuracy (same order)
    maes = [rec["energy_mae"] for rec in records.values()]
    assert max(maes) < 10 * min(maes) + 1e-3

"""Train-step benchmark: eager tape vs compile-once replay.

Measures the compile-once training step (:mod:`repro.tensor.compile`)
against the eager engine across the Fig. 8 optimization ladder — BASELINE
through FUSED exercise the derivative (double-backward) force/stress path
"without heads", DECOMPOSE_FS is the Force/Stress-head variant — on two
workloads:

* ``medium`` — the headline workload: a training-shaped batch where the
  tape bookkeeping the compiler removes (graph recording, VJP re-derivation,
  per-op dispatch, allocations) is a large share of the step.
* ``large`` — bigger graphs/features where NumPy kernel time dominates;
  reported to show the honest bound of replay gains on this substrate.

Per level the benchmark reports steps/s (eager vs compiled replay), the
kernel launches per step (fused chains count as one launch), the captured
vs compiled instruction counts (dead-code elimination + fusion), the arena
size, and a bitwise-equality check (one validated replay per level; the
run aborts if replay diverges from eager).

Writes ``BENCH_train_step.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes/repeats so the whole run
takes seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_train_step.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.dataset import StructureDataset
from repro.data.mptrj import generate_mptrj
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.runtime import device_profile
from repro.tensor.compile import StepCompiler
from repro.train.loss import CompositeLoss

WORKLOADS = {
    "medium": {"structures": 8, "max_atoms": 4, "batch_size": 4, "dim": 8},
    "large": {"structures": 8, "max_atoms": 8, "batch_size": 8, "dim": 16},
}


def _config(dim: int) -> CHGNetConfig:
    return CHGNetConfig(
        atom_fea_dim=dim,
        bond_fea_dim=dim,
        angle_fea_dim=dim,
        num_radial=7,
        angular_order=3,
        hidden_dim=dim,
    )


def _steps_per_s(step_fn, n_steps: int) -> float:
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        for _ in range(n_steps):
            step_fn()
        best = min(best, (time.perf_counter() - t0) / n_steps)
    return 1.0 / best


def bench_level(level: OptLevel, workload: dict, n_steps: int) -> dict:
    entries = generate_mptrj(
        workload["structures"], seed=3, max_atoms=workload["max_atoms"]
    )
    ds = StructureDataset(entries)
    batch = ds.batch(list(range(workload["batch_size"])))
    model = CHGNetModel(
        _config(workload["dim"]).with_level(level), np.random.default_rng(1)
    )
    loss_fn = CompositeLoss()

    def eager_step():
        model.zero_grad()
        out = model.forward(batch, training=True)
        loss_fn(out, batch).loss.backward()

    # Bitwise equality: a validating compiler raises if any replayed loss,
    # prediction or parameter gradient differs from eager by a single bit.
    checker = StepCompiler(model, loss_fn, validate=True)
    checker.step(batch)
    checker.step(batch)
    bitwise_equal = checker.stats.replays >= 1
    checker.release()

    eager_step()  # warm
    eager_sps = _steps_per_s(eager_step, n_steps)
    with device_profile() as eager_prof:
        eager_step()

    comp = StepCompiler(model, loss_fn)
    comp.step(batch)  # capture
    comp.step(batch)  # warm replay
    compiled_sps = _steps_per_s(lambda: comp.step(batch), n_steps)
    with device_profile() as compiled_prof:
        comp.step(batch)
    prog = next(iter(comp._programs.values()))
    row = {
        "level": level.name,
        "use_heads": bool(model.config.use_heads),
        "eager_steps_per_s": eager_sps,
        "compiled_steps_per_s": compiled_sps,
        "speedup": compiled_sps / eager_sps,
        "eager_kernels_per_step": eager_prof.kernels.count,
        "compiled_kernels_per_step": compiled_prof.kernels.count,
        "instrs_captured": prog.n_instrs_captured,
        "instrs_compiled": prog.n_instrs,
        "arena_mib": comp.arena_bytes / (1024.0 * 1024.0),
        "bitwise_equal": bitwise_equal,
        "stats": comp.stats.as_dict(),
    }
    comp.release()
    return row


def run_workload(name: str, smoke: bool) -> dict:
    workload = dict(WORKLOADS[name])
    n_steps = 3 if smoke else 10
    rows = [bench_level(level, workload, n_steps) for level in OptLevel]
    return {"params": workload, "levels": rows}


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    names = ["medium"] if args.smoke else ["medium", "large"]
    results = {
        "mode": "smoke" if args.smoke else "full",
        "workloads": {name: run_workload(name, args.smoke) for name in names},
    }
    medium = results["workloads"]["medium"]["levels"]
    results["medium_max_speedup"] = max(r["speedup"] for r in medium)
    results["medium_all_bitwise_equal"] = all(r["bitwise_equal"] for r in medium)

    out_path = args.out or (output_dir() / "BENCH_train_step.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    for name, data in results["workloads"].items():
        rows = [
            [
                r["level"],
                "yes" if r["use_heads"] else "no",
                f"{r['eager_steps_per_s']:.2f}",
                f"{r['compiled_steps_per_s']:.2f}",
                f"{r['speedup']:.2f}x",
                f"{r['eager_kernels_per_step']}",
                f"{r['compiled_kernels_per_step']}",
                "bit-equal" if r["bitwise_equal"] else "DIVERGED",
            ]
            for r in data["levels"]
        ]
        emit(
            f"train_step_{name}",
            format_table(
                [
                    "level",
                    "heads",
                    "eager steps/s",
                    "compiled steps/s",
                    "speedup",
                    "eager kernels",
                    "compiled kernels",
                    "replay check",
                ],
                rows,
                title=f"Compile-once training step ({name} workload)",
            ),
        )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

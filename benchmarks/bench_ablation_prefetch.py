"""Ablation — data prefetch (Section III-C "Other Optimization").

The paper transfers the next mini-batch on a separate stream while the
current one trains.  Here the prefetching loader collates the next batch in
a background thread while the trainer computes; the bench measures one
epoch of FastCHGNet training with and without prefetch.

Shape to reproduce: the prefetched epoch is never slower, and approaches
compute-bound time (batch preparation hidden).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.workloads import training_splits
from repro.data import DataLoader
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.train import Adam, CompositeLoss


def _epoch_seconds(prefetch: bool) -> float:
    splits = training_splits()
    model = CHGNetModel(CHGNetConfig(opt_level=OptLevel.DECOMPOSE_FS), np.random.default_rng(1))
    loss_fn = CompositeLoss()
    optimizer = Adam(model.parameters(), lr=3e-4)
    loader = DataLoader(splits.train, batch_size=8, seed=0, prefetch=prefetch)
    t0 = time.perf_counter()
    for batch in loader:
        model.zero_grad()
        out = model.forward(batch, training=True)
        loss_fn(out, batch).loss.backward()
        optimizer.step()
    return time.perf_counter() - t0


def test_ablation_prefetch(benchmark):
    def run():
        return _epoch_seconds(prefetch=False), _epoch_seconds(prefetch=True)

    t_sync, t_prefetch = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["loader", "epoch time (s)"],
        [
            ["synchronous", f"{t_sync:.2f}"],
            ["prefetch (double-buffered)", f"{t_prefetch:.2f}"],
            ["saving", f"{(1 - t_prefetch / t_sync) * 100:.1f}%"],
        ],
        title="Ablation — data prefetch vs synchronous loading (1 epoch)",
    )
    emit("ablation_prefetch", table)
    # never significantly slower (thread handoff overhead bounded)
    assert t_prefetch < t_sync * 1.15

"""Fig. 10 — strong and weak scaling of FastCHGNet on 4-32 GPUs.

Paper (4 GPUs/node, global batch 2048 strong / 512-per-rank weak):

* strong: speedup 1.65x (8 GPUs, 82.5% eff.), 3.18x (16, 79.5%),
  5.26x (32, 66%);
* weak: efficiencies 91.5% / 84.6% / 74.6% at 8/16/32 GPUs.

Reproduction method (see DESIGN.md): iteration time on p ranks is modeled
as max-rank compute + exposed ring-allreduce communication, averaged over
many sampled iterations.  Two ingredients:

1. *Compute model.*  Per-rank compute is linear in the rank's feature
   number.  The linearity (and this substrate's rate) is verified by
   measuring real FastCHGNet training steps here; the *A100-scale* rate
   plugged into the cluster model is anchored to the paper's own Fig. 8(a)
   (0.190 s for a batch-64 iteration, ~190k features with MPtrj-sized
   structures -> ~0.9 us/feature + fixed per-step overhead).
2. *Communication model.*  Alpha-beta ring allreduce over the paper's
   cluster (NVLink intra-node for <=4 GPUs, IB fat-tree beyond), with
   bucketed overlap behind the backward pass.

The efficiency losses then emerge from the same two mechanisms as on the
real cluster: straggler growth (max over more ranks of long-tail loads)
and exposed communication.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.workloads import training_splits, wide_feature_numbers
from repro.comm import ClusterSpec, ComputeModel, model_iteration
from repro.data import LoadBalanceSampler
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.train import Adam, CompositeLoss

WORLDS = (4, 8, 16, 32)
STRONG_GLOBAL = 2048
WEAK_PER_RANK = 512
ITER_DRAWS = 40  # iterations averaged per scaling point

# A100-scale compute constants anchored to the paper's Fig. 8(a); see module
# docstring.  The measured substrate rate is reported alongside for the
# linearity check and the substrate-vs-A100 factor.
A100_RATE = 0.9e-6  # seconds per feature
A100_OVERHEAD = 0.02  # seconds per step (kernel-launch floor)
JITTER_SIGMA = 0.06  # per-rank lognormal timing noise (OS/kernel variance)


def _measure_substrate_rate() -> ComputeModel:
    """Measure real FastCHGNet training steps; validates the linear model."""
    import time

    splits = training_splits()
    model = CHGNetModel(CHGNetConfig(opt_level=OptLevel.DECOMPOSE_FS), np.random.default_rng(1))
    loss_fn = CompositeLoss()
    optimizer = Adam(model.parameters(), lr=3e-4)
    feats, secs = [], []
    for size in (4, 8, 16, 24):
        idx = np.arange(size) % len(splits.train)
        batch = splits.train.batch(idx)

        def step():
            model.zero_grad()
            out = model.forward(batch, training=True)
            loss_fn(out, batch).loss.backward()
            optimizer.step()

        step()  # warm
        t0 = time.perf_counter()
        step()
        secs.append(time.perf_counter() - t0)
        feats.append(batch.feature_number)
    return ComputeModel.calibrate(np.array(feats), np.array(secs))


def _mean_iteration_time(
    features: np.ndarray,
    per_rank: int,
    world: int,
    compute: ComputeModel,
    grad_bytes: int,
    spec: ClusterSpec,
    rng: np.random.Generator,
) -> tuple[float, float, float]:
    """(mean iter time, mean compute, mean exposed comm) over many draws."""
    times, computes, comms = [], [], []
    for _ in range(ITER_DRAWS):
        pool = rng.choice(features, size=per_rank * world, replace=True)
        sampler = LoadBalanceSampler(pool, per_rank * world, world, seed=0)
        shards = sampler.partition(np.arange(per_rank * world))
        loads = sampler.rank_loads(shards)
        pt = model_iteration(
            loads, compute, grad_bytes, world, spec, jitter_sigma=JITTER_SIGMA, rng=rng
        )
        times.append(pt.iteration_time)
        computes.append(pt.compute_time)
        comms.append(pt.exposed_comm)
    return float(np.mean(times)), float(np.mean(computes)), float(np.mean(comms))


def _grad_bytes() -> int:
    model = CHGNetModel(CHGNetConfig(opt_level=OptLevel.DECOMPOSE_FS), np.random.default_rng(0))
    return int(sum(p.data.nbytes for p in model.parameters()))


def test_fig10_scaling(benchmark):
    substrate = benchmark.pedantic(_measure_substrate_rate, rounds=1, iterations=1)
    cluster_compute = ComputeModel(rate=A100_RATE, overhead=A100_OVERHEAD)
    features = wide_feature_numbers().sum(axis=1)
    rng = np.random.default_rng(42)
    spec = ClusterSpec(gpus_per_node=4)
    grad_bytes = _grad_bytes()

    strong = {
        w: _mean_iteration_time(
            features, STRONG_GLOBAL // w, w, cluster_compute, grad_bytes, spec, rng
        )
        for w in WORLDS
    }
    weak = {
        w: _mean_iteration_time(
            features, WEAK_PER_RANK, w, cluster_compute, grad_bytes, spec, rng
        )
        for w in WORLDS
    }

    base_t = strong[WORLDS[0]][0]
    paper_strong = {8: (1.65, 82.5), 16: (3.18, 79.5), 32: (5.26, 66.0)}
    rows = []
    for w in WORLDS:
        t, comp, comm = strong[w]
        speedup = base_t / t
        eff = speedup * WORLDS[0] / w * 100
        paper = paper_strong.get(w)
        rows.append(
            [
                str(w),
                f"{t:.3f}",
                f"{comp:.3f}",
                f"{comm * 1e3:.1f}",
                f"{speedup:.2f}x",
                f"{eff:.1f}%",
                "-" if paper is None else f"{paper[0]:.2f}x / {paper[1]:.1f}%",
            ]
        )
    strong_table = format_table(
        ["GPUs", "iter (s)", "compute (s)", "exposed comm (ms)", "speedup", "efficiency", "paper"],
        rows,
        title=f"Fig. 10(a) strong scaling (global batch {STRONG_GLOBAL})",
    )

    weak_base = weak[WORLDS[0]][0]
    paper_weak = {8: 91.5, 16: 84.6, 32: 74.6}
    rows = []
    for w in WORLDS:
        t, comp, comm = weak[w]
        eff = weak_base / t * 100
        paper = paper_weak.get(w)
        rows.append(
            [
                str(w),
                f"{t:.3f}",
                f"{comm * 1e3:.1f}",
                f"{eff:.1f}%",
                "-" if paper is None else f"{paper:.1f}%",
            ]
        )
    weak_table = format_table(
        ["GPUs", "iter (s)", "exposed comm (ms)", "efficiency", "paper efficiency"],
        rows,
        title=f"Fig. 10(b) weak scaling ({WEAK_PER_RANK} samples/rank)",
    )
    factor = substrate.rate / A100_RATE
    emit(
        "fig10_scaling",
        strong_table
        + "\n\n"
        + weak_table
        + f"\n\nsubstrate rate {substrate.rate * 1e6:.2f} us/feature "
        + f"(~{factor:.0f}x slower than the A100 anchor {A100_RATE * 1e6:.2f} us/feature); "
        + f"gradient size {grad_bytes / 1e6:.1f} MB",
    )

    # Shape assertions:
    speedups = [base_t / strong[w][0] for w in WORLDS]
    effs = [s * WORLDS[0] / w for s, w in zip(speedups, WORLDS)]
    assert all(b > a for a, b in zip(speedups, speedups[1:])), "speedup grows"
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:])), "strong eff decays"
    assert 1.2 < speedups[1] < 2.0  # paper 1.65x at 8 GPUs
    assert 3.0 < speedups[3] < 8.0  # paper 5.26x at 32 GPUs
    weffs = [weak_base / weak[w][0] for w in WORLDS]
    # decays overall, with a small tolerance for sampling noise per point
    assert all(b <= a + 0.03 for a, b in zip(weffs, weffs[1:])), "weak eff decays"
    assert weffs[-1] <= weffs[0] + 1e-9
    assert weffs[-1] > 0.5  # paper 74.6%
    # the substrate measurement really is linear in feature count
    assert substrate.rate > 0

"""Serving benchmark: tiered dynamic batching vs eager per-request inference.

Measures the serving engine (ISSUE 4) end to end — micro-batches grouped
per workload tier, ghost-padded to canonical shapes and replayed through the
worker-shared program cache — against the eager per-request baseline
(batch-of-one, no padding, no compile) on the same request streams:

* ``medium`` — the headline workload: small graphs and model dims where
  per-op dispatch dominates and batched replay pays off most;
* ``large`` — bigger graphs/dims where NumPy kernel time dominates;
  reported as the honest bound of serving gains on this substrate.

Per workload the benchmark reports wall-clock throughput (structs/s, warm
cache), the modeled parallel throughput over ``n_workers`` simulated
workers (requests / virtual makespan), modeled per-request latency
p50/p95, the program-cache hit rate of the measured (post-warmup) pass,
capture counts, and a bitwise-equality check: every served prediction must
equal the eager per-request prediction bit for bit (energy, forces,
stress, magmom).

Writes ``BENCH_serve.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes/repeats so the whole run
takes seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.mptrj import generate_mptrj
from repro.graph.crystal_graph import build_graph
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.serve import InferenceEngine

WORKLOADS = {
    "medium": {
        "pool": 16,
        "max_atoms": 6,
        "requests": 96,
        "batch_structs": 8,
        "workers": 2,
        "dim": 8,
    },
    "large": {
        "pool": 16,
        "max_atoms": 8,
        "requests": 96,
        "batch_structs": 8,
        "workers": 2,
        "dim": 16,
    },
}


def _config(dim: int) -> CHGNetConfig:
    return CHGNetConfig(
        atom_fea_dim=dim,
        bond_fea_dim=dim,
        angle_fea_dim=dim,
        num_radial=7,
        angular_order=3,
        hidden_dim=dim,
        opt_level=OptLevel.DECOMPOSE_FS,
    )


def _model(dim: int) -> CHGNetModel:
    model = CHGNetModel(_config(dim), np.random.default_rng(1))
    # Un-zero the zero-initialized readout heads so the bitwise-equality
    # check compares real (non-zero) energies/forces/stresses.
    rng = np.random.default_rng(7)
    for p in model.parameters():
        p.data += rng.normal(scale=0.05, size=p.data.shape)
    return model


def _stream(workload: dict, n_requests: int):
    cfg = _config(workload["dim"])
    entries = generate_mptrj(workload["pool"], seed=3, max_atoms=workload["max_atoms"])
    graphs = [
        build_graph(e.crystal, cfg.cutoff_atom, cfg.cutoff_bond) for e in entries
    ]
    return [graphs[i % len(graphs)] for i in range(n_requests)]


def _best_structs_per_s(engine: InferenceEngine, stream, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.predict_many(stream)
        best = min(best, time.perf_counter() - t0)
    return len(stream) / best


def _predictions_equal(a, b) -> bool:
    return (
        a.energy_per_atom == b.energy_per_atom
        and np.array_equal(a.forces, b.forces)
        and np.array_equal(a.stress, b.stress)
        and np.array_equal(a.magmom, b.magmom)
    )


def bench_workload(name: str, workload: dict, n_requests: int, repeats: int) -> dict:
    stream = _stream(workload, n_requests)
    model = _model(workload["dim"])

    eager = InferenceEngine(model, n_workers=1, compile=False, max_batch_structs=1)
    eager_preds = eager.predict_many(stream)
    eager_sps = _best_structs_per_s(eager, stream, repeats)

    served_engine = InferenceEngine(
        model,
        n_workers=workload["workers"],
        compile=True,
        max_batch_structs=workload["batch_structs"],
    )
    served_preds = served_engine.predict_many(stream)  # cold: captures
    bit_identical = all(
        _predictions_equal(a, b) for a, b in zip(served_preds, eager_preds)
    )
    served_engine.predict_many(stream)  # warm page-touched arenas
    warm_before = served_engine.snapshot()
    served_sps = _best_structs_per_s(served_engine, stream, repeats)
    warm_after = served_engine.snapshot()
    warm_hits = warm_after["cache_hits"] - warm_before["cache_hits"]
    warm_misses = warm_after["cache_misses"] - warm_before["cache_misses"]
    warm_hit_rate = warm_hits / max(1, warm_hits + warm_misses)

    # Modeled parallel throughput: virtual makespan of one more warm pass
    # across the simulated workers (measured per-batch service times).
    free0 = served_engine.makespan()
    served_engine.predict_many(stream)
    modeled_sps = n_requests / max(1e-12, served_engine.makespan() - free0)

    snap = served_engine.snapshot()
    return {
        "workload": name,
        "workers": workload["workers"],
        "batch_structs": workload["batch_structs"],
        "requests": n_requests,
        "eager_structs_per_s": eager_sps,
        "served_structs_per_s": served_sps,
        "speedup": served_sps / eager_sps,
        "modeled_parallel_structs_per_s": modeled_sps,
        "latency_p50": snap["latency_p50"],
        "latency_p95": snap["latency_p95"],
        "captures": snap["captures"],
        "replays": snap["replays"],
        "eager_fallbacks": snap["eager_fallbacks"],
        "warm_hit_rate": warm_hit_rate,
        "bit_identical": bit_identical,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    names = ["medium"] if args.smoke else ["medium", "large"]
    n_requests = 64 if args.smoke else 96
    repeats = 2 if args.smoke else 3
    results = {
        "mode": "smoke" if args.smoke else "full",
        "workloads": {
            name: bench_workload(name, WORKLOADS[name], n_requests, repeats)
            for name in names
        },
    }
    medium = results["workloads"]["medium"]
    results["medium_speedup"] = medium["speedup"]
    results["medium_bit_identical"] = medium["bit_identical"]
    results["medium_warm_hit_rate"] = medium["warm_hit_rate"]

    out_path = args.out or (output_dir() / "BENCH_serve.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    rows = [
        [
            r["workload"],
            str(r["workers"]),
            f"{r['eager_structs_per_s']:.0f}",
            f"{r['served_structs_per_s']:.0f}",
            f"{r['speedup']:.2f}x",
            f"{r['modeled_parallel_structs_per_s']:.0f}",
            f"{r['latency_p50'] * 1e3:.1f}/{r['latency_p95'] * 1e3:.1f}",
            f"{r['warm_hit_rate'] * 100:.0f}%",
            str(r["captures"]),
            "bit-equal" if r["bit_identical"] else "DIVERGED",
        ]
        for r in results["workloads"].values()
    ]
    emit(
        "serve",
        format_table(
            [
                "workload",
                "workers",
                "eager structs/s",
                "served structs/s",
                "speedup",
                "modeled structs/s",
                "p50/p95 ms",
                "warm hits",
                "captures",
                "vs eager",
            ],
            rows,
            title="Inference serving (tiered dynamic batching + shared program replay)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

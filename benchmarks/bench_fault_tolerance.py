"""Fault-tolerance benchmark: recovery cost, bit-identity, straggler pricing.

Exercises the elastic training stack (ISSUE 6) end to end against an
uninterrupted reference run on the same dataset:

* **Kill + resume (replacement)** — a rank is killed mid-epoch and the run
  recovers from the latest step-granular checkpoint at the same world size
  (:func:`repro.train.elastic.run_elastic` with ``shrink=False``).  The
  recovered run must finish **bit-identical** to the reference; the
  benchmark prices the recovery (steps redone, trainer-rebuild seconds,
  checkpoint write seconds).
* **Kill + shrink** — the same failure recovered by re-sharding onto the
  surviving world (``shrink=True``).  Survivor replicas must stay in sync;
  the benchmark reports the world transition and recovery price.
* **Straggler mitigation pricing** — one rank's virtual clock is skewed by
  a fault plan; the modeled synchronized-step time is the max over ranks,
  so the benchmark reports the slowdown honestly instead of hiding it in
  an average.  A timeout plan exercises the bounded retry/backoff around
  the bucketed gradient flush and reports the priced backoff.
* **Ring accounting** — a ring-traced run checks every recorded transfer
  against the ``2 (p-1)/p * n`` closed form the cost model assumes.

Writes ``BENCH_fault_tolerance.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes so the whole run takes
seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.comm import FaultPlan
from repro.data.dataset import StructureDataset
from repro.data.mptrj import generate_mptrj
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.train import DistributedConfig, DistributedTrainer, run_elastic

WORKLOADS = {
    "medium": {
        "structures": 16,
        "max_atoms": 4,
        "global_batch": 8,
        "world_size": 2,
        "dim": 8,
        "kill_step": 3,
    },
    "large": {
        "structures": 24,
        "max_atoms": 8,
        "global_batch": 8,
        "world_size": 4,
        "dim": 16,
        "kill_step": 5,
    },
}


def _config(dim: int) -> CHGNetConfig:
    return CHGNetConfig(
        atom_fea_dim=dim,
        bond_fea_dim=dim,
        angle_fea_dim=dim,
        num_radial=7,
        angular_order=3,
        hidden_dim=dim,
    )


def _factory(dim: int):
    return lambda: CHGNetModel(
        _config(dim).with_level(OptLevel.DECOMPOSE_FS), np.random.default_rng(1)
    )


def _dist_config(workload: dict, **overrides) -> DistributedConfig:
    base = dict(
        world_size=workload["world_size"],
        global_batch_size=workload["global_batch"],
        epochs=2,
        learning_rate=1e-4,
        seed=0,
    )
    base.update(overrides)
    return DistributedConfig(**base)


def _bit_identical(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def _modeled_epoch_seconds(trainer: DistributedTrainer) -> float:
    """Sum of per-step synchronized times: each step waits for its slowest rank."""
    return float(
        sum(np.max(step.rank_compute_seconds) for step in trainer.steps)
    )


def _ring_closed_form_ok(p: int) -> bool:
    """Traced volume equals ``2 (p-1)/p * n`` for divisible and ragged n."""
    from repro.comm.ring import ring_allreduce

    rng = np.random.default_rng(0)
    for n in (p * 40, p * 40 + 3, 7):
        bufs = [rng.standard_normal(n) for _ in range(p)]
        _, trace = ring_allreduce(bufs)
        if trace.bytes_per_rank != 2 * (p - 1) * n // p * bufs[0].itemsize:
            return False
    return True


def bench_workload(name: str, workload: dict, tmpdir: str) -> dict:
    entries = generate_mptrj(
        workload["structures"], seed=3, max_atoms=workload["max_atoms"]
    )
    ds = StructureDataset(entries, memoize_batches=True)
    factory = _factory(workload["dim"])
    ckpt = os.path.join(tmpdir, f"{name}.rckpt")

    # Uninterrupted reference (the bit-identity oracle).
    reference = DistributedTrainer(factory, ds, _dist_config(workload))
    t0 = time.perf_counter()
    reference.train()
    reference_seconds = time.perf_counter() - t0
    reference_state = reference.model.state_dict()

    # Checkpoint write cost (steady state: one save of the trained state).
    t0 = time.perf_counter()
    reference.save_checkpoint(ckpt)
    checkpoint_write_seconds = time.perf_counter() - t0

    # Kill + replacement resume: same world size, must finish bit-identical.
    kill_step = workload["kill_step"]
    plan = FaultPlan().kill(rank=workload["world_size"] - 1, step=kill_step)
    t0 = time.perf_counter()
    replaced = run_elastic(
        factory,
        ds,
        _dist_config(workload),
        checkpoint_path=ckpt,
        checkpoint_every=2,
        fault_plan=plan,
        shrink=False,
    )
    replaced_seconds = time.perf_counter() - t0
    replacement_identical = _bit_identical(
        reference_state, replaced.trainer.model.state_dict()
    )

    # Kill + shrink: recover on the surviving world.
    plan = FaultPlan().kill(rank=0, step=kill_step)
    shrunk = run_elastic(
        factory,
        ds,
        _dist_config(workload),
        checkpoint_path=ckpt,
        checkpoint_every=2,
        fault_plan=plan,
        shrink=True,
    )
    shrink_event = shrunk.failures[0]

    # Straggler pricing: skew one rank, compare modeled synchronized time.
    clean = DistributedTrainer(factory, ds, _dist_config(workload, epochs=1))
    clean.train()
    straggle_seconds = 0.05
    plan = FaultPlan().straggle(rank=0, seconds=straggle_seconds)
    straggled = DistributedTrainer(
        factory, ds, _dist_config(workload, epochs=1), fault_plan=plan
    )
    straggled.train()
    clean_modeled = _modeled_epoch_seconds(clean)
    straggled_modeled = _modeled_epoch_seconds(straggled)
    straggler_consistent = _bit_identical(
        clean.model.state_dict(), straggled.model.state_dict()
    )

    # Timeout retry pricing: a transient collective timeout is retried with
    # priced exponential backoff instead of hanging or dying.
    plan = FaultPlan().timeout(step=1, attempts=1)
    retried = DistributedTrainer(
        factory, ds, _dist_config(workload, epochs=1), fault_plan=plan
    )
    retried.train()

    # Ring accounting: a traced run records 2(p-1) steps per collective, and
    # the recorded volume matches the 2(p-1)/p * n closed form on known
    # element counts (including non-divisible chunkings).
    ringed = DistributedTrainer(
        factory, ds, _dist_config(workload, epochs=1, trace_ring=True)
    )
    ringed.train()
    p = workload["world_size"]
    ring_ok = bool(ringed.comm.ring_traces) and all(
        tr.steps == 2 * (p - 1) for tr in ringed.comm.ring_traces
    )
    ring_ok = ring_ok and _ring_closed_form_ok(p)

    replacement_event = replaced.failures[0]
    return {
        "workload": name,
        "world_size": workload["world_size"],
        "reference_seconds": reference_seconds,
        "checkpoint_write_seconds": checkpoint_write_seconds,
        "replacement_identical": replacement_identical,
        "replacement_steps_lost": replacement_event.steps_lost,
        "replacement_resume_seconds": replacement_event.resume_seconds,
        "recovery_overhead": replaced_seconds / reference_seconds - 1.0,
        "shrink_world_before": shrink_event.world_before,
        "shrink_world_after": shrink_event.world_after,
        "shrink_survivors_in_sync": shrunk.trainer.replicas_in_sync(),
        "straggler_slowdown": straggled_modeled / clean_modeled,
        "straggler_bit_consistent": straggler_consistent,
        "flush_retries": retried.flush_retries,
        "backoff_seconds": retried.backoff_seconds,
        "retried_in_sync": retried.replicas_in_sync(),
        "ring_traces": len(ringed.comm.ring_traces),
        "ring_accounting_ok": ring_ok,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    names = ["medium"] if args.smoke else ["medium", "large"]
    with tempfile.TemporaryDirectory() as tmpdir:
        results = {
            "mode": "smoke" if args.smoke else "full",
            "workloads": {
                name: bench_workload(name, WORKLOADS[name], tmpdir) for name in names
            },
        }
    medium = results["workloads"]["medium"]
    results["medium_replacement_identical"] = medium["replacement_identical"]
    results["medium_recovery_overhead"] = medium["recovery_overhead"]

    out_path = args.out or (output_dir() / "BENCH_fault_tolerance.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    rows = [
        [
            r["workload"],
            str(r["world_size"]),
            "bit-equal" if r["replacement_identical"] else "DIVERGED",
            str(r["replacement_steps_lost"]),
            f"{r['recovery_overhead'] * 100:.1f}%",
            f"{r['shrink_world_before']}->{r['shrink_world_after']}",
            f"{r['straggler_slowdown']:.2f}x",
            f"{r['flush_retries']} ({r['backoff_seconds'] * 1e3:.1f} ms)",
            "ok" if r["ring_accounting_ok"] else "BAD",
        ]
        for r in results["workloads"].values()
    ]
    emit(
        "fault_tolerance",
        format_table(
            [
                "workload",
                "ranks",
                "resume oracle",
                "steps redone",
                "recovery overhead",
                "shrink",
                "straggler slowdown",
                "flush retries",
                "ring trace",
            ],
            rows,
            title="Elastic fault tolerance (kill/resume, shrink, stragglers)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

"""Live-serving benchmark: hot-swap, adaptive tier merging, collate memoization.

Measures the ISSUE-5 serving extensions end to end:

* **Versioned weight hot-swap** — a fine-tuned checkpoint is published while
  a mixed-version request stream is in flight.  Reports the publish latency
  (snapshot cost; workers rebind copy-on-write, so it is independent of
  worker count), verifies that requests pinned to the old version remain
  bit-identical to solo eager inference on the old weights (and new-version
  requests to the new weights), and that the publish triggered **zero
  program recaptures**.
* **Adaptive micro-batching** — a diverse trickle (one structure every
  ``dt`` on the virtual clock, cycling a long-tail pool) served with exact
  per-tier queues vs ``merge_tiers=True``.  Reports wall-clock structs/s,
  batch counts, mean batch fill and the priced padding overhead; merging
  must form fewer, fuller batches at bounded extra padding.
* **Engine-side collate memoization** — a recurring screening pool served
  repeatedly with ``memoize=0`` vs ``memoize=64``.  Warm passes on the
  memoizing engine bind-and-replay previously collated batches (zero
  re-concatenation); reports warm structs/s and the collate hit rate.

Writes ``BENCH_serve_live.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes/repeats so the whole run
takes seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_live.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.mptrj import generate_mptrj
from repro.graph.crystal_graph import build_graph
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.serve import InferenceEngine


def _config(dim: int) -> CHGNetConfig:
    return CHGNetConfig(
        atom_fea_dim=dim,
        bond_fea_dim=dim,
        angle_fea_dim=dim,
        num_radial=7,
        angular_order=3,
        hidden_dim=dim,
        opt_level=OptLevel.DECOMPOSE_FS,
    )


def _model(dim: int) -> CHGNetModel:
    model = CHGNetModel(_config(dim), np.random.default_rng(1))
    # Un-zero the zero-initialized readout heads so bitwise-equality checks
    # compare real (non-zero) energies/forces/stresses.
    rng = np.random.default_rng(7)
    for p in model.parameters():
        p.data += rng.normal(scale=0.05, size=p.data.shape)
    return model


def _graphs(dim: int, pool: int, max_atoms: int):
    cfg = _config(dim)
    entries = generate_mptrj(pool, seed=3, max_atoms=max_atoms)
    return [build_graph(e.crystal, cfg.cutoff_atom, cfg.cutoff_bond) for e in entries]


def _model_with(dim: int, state: dict) -> CHGNetModel:
    model = CHGNetModel(_config(dim), np.random.default_rng(5))
    model.load_state_dict(state)
    return model


def _solo_eager(model, items):
    engine = InferenceEngine(model, n_workers=1, compile=False, max_batch_structs=1)
    return engine.predict_many(items)


def _equal(a, b) -> bool:
    return (
        a.energy_per_atom == b.energy_per_atom
        and np.array_equal(a.forces, b.forces)
        and np.array_equal(a.stress, b.stress)
        and np.array_equal(a.magmom, b.magmom)
    )


# ----------------------------------------------------------------- hot swap
def bench_hot_swap(dim: int, graphs, n_requests: int) -> dict:
    model = _model(dim)
    state_v0 = model.state_dict()
    engine = InferenceEngine(
        model, n_workers=2, compile=True, max_batch_structs=4, max_wait=100.0
    )
    half_a = [graphs[i % len(graphs)] for i in range(n_requests // 2)]
    half_b = [graphs[(i + 3) % len(graphs)] for i in range(n_requests - len(half_a))]
    # Warm run: identical submit/flush waves on v0 capture every group shape.
    for half in (half_a, half_b):
        ids = [engine.submit(g, now=0.0) for g in half]
        engine.flush(now=0.0)
        for i in ids:
            engine.poll(i)
    captures_before = engine.snapshot()["captures"]

    v0 = engine.current_version
    ids_v0 = [engine.submit(g, now=0.0) for g in half_a]  # in flight, pinned v0
    for p in model.parameters():  # the live fine-tune update
        p.data *= 1.01
    state_v1 = model.state_dict()
    t0 = time.perf_counter()
    v1 = engine.publish_weights()
    publish_seconds = time.perf_counter() - t0
    ids_v1 = [engine.submit(g, now=0.0) for g in half_b]
    engine.flush(now=0.0)
    preds_v0 = [engine.poll(i) for i in ids_v0]
    preds_v1 = [engine.poll(i) for i in ids_v1]
    captures_after = engine.snapshot()["captures"]

    base_v0 = _solo_eager(_model_with(dim, state_v0), half_a)
    base_v1 = _solo_eager(_model_with(dim, state_v1), half_b)
    return {
        "requests": n_requests,
        "publish_seconds": publish_seconds,
        "captures_before_publish": captures_before,
        "captures_after_publish": captures_after,
        "recaptures": captures_after - captures_before,
        "pinned_bit_identical": all(
            p.version == v0 and _equal(p, b) for p, b in zip(preds_v0, base_v0)
        ),
        "fresh_bit_identical": all(
            p.version == v1 and _equal(p, b) for p, b in zip(preds_v1, base_v1)
        ),
    }


# ------------------------------------------------------------ tier merging
def _drive_trickle(engine, stream, dt: float, base: float) -> tuple[list, float]:
    # ``base`` keeps repeated passes on the engine's monotonic virtual
    # clock: arrival *differences* (which drive deadlines and grouping)
    # are identical every pass.
    t0 = time.perf_counter()
    ids = [engine.submit(g, now=base + i * dt) for i, g in enumerate(stream)]
    engine.flush(now=base + len(stream) * dt)
    preds = [engine.poll(i) for i in ids]
    return preds, time.perf_counter() - t0


def bench_adaptive(dim: int, graphs, n_requests: int, repeats: int) -> dict:
    model = _model(dim)
    # Diverse trickle: random draws from the long-tail pool, so consecutive
    # arrivals rarely share a workload tier and exact per-tier queues flush
    # mostly-partial groups at the deadline.
    order = np.random.default_rng(11).integers(0, len(graphs), n_requests)
    stream = [graphs[i] for i in order]
    base_preds = _solo_eager(model, stream)
    dt, max_wait = 0.01, 0.06

    def run(merge: bool) -> dict:
        engine = InferenceEngine(
            model,
            n_workers=1,
            compile=True,
            max_batch_structs=8,
            max_wait=max_wait,
            merge_tiers=merge,
        )
        best = float("inf")
        for rep in range(repeats):
            base = rep * (len(stream) * dt + 1.0)
            preds, wall = _drive_trickle(engine, stream, dt, base)
            best = min(best, wall)
        snap = engine.snapshot()
        # grouping is virtual-clock-deterministic, so every pass dispatches
        # the same batches; per-pass counters are totals / repeats
        return {
            "structs_per_s": len(stream) / best,
            "batches_per_pass": snap["batches"] // repeats,
            "mean_batch_structs": float(np.mean([p.batch_structs for p in preds])),
            "padding_overhead": snap["padding_overhead"],
            "merges_per_pass": snap["merges"] // repeats,
            "bit_identical": all(_equal(a, b) for a, b in zip(preds, base_preds)),
        }

    exact = run(False)
    merged = run(True)
    return {
        "requests": n_requests,
        "exact": exact,
        "merged": merged,
        "merge_speedup": merged["structs_per_s"] / exact["structs_per_s"],
        "batch_reduction": 1 - merged["batches_per_pass"] / exact["batches_per_pass"],
        "extra_padding": merged["padding_overhead"] - exact["padding_overhead"],
    }


# ------------------------------------------------------------- memoization
def bench_memoize(dim: int, graphs, n_requests: int, repeats: int) -> dict:
    model = _model(dim)
    stream = [graphs[i % len(graphs)] for i in range(n_requests)]

    def run(memoize: int) -> tuple[float, dict]:
        engine = InferenceEngine(
            model, n_workers=1, compile=True, max_batch_structs=8, memoize=memoize
        )
        engine.predict_many(stream)  # cold: captures (+ collate misses)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            preds = engine.predict_many(stream)
            best = min(best, time.perf_counter() - t0)
        base = _solo_eager(model, stream)
        assert all(_equal(a, b) for a, b in zip(preds, base))
        return len(stream) / best, engine.snapshot()

    off_sps, _ = run(0)
    on_sps, snap = run(64)
    return {
        "requests": n_requests,
        "off_structs_per_s": off_sps,
        "on_structs_per_s": on_sps,
        "memo_speedup": on_sps / off_sps,
        "collate_hits": snap["collate_hits"],
        "collate_misses": snap["collate_misses"],
        "warm_hit_rate": snap["collate_hits"]
        / max(1, snap["collate_hits"] + snap["collate_misses"]),
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    dim = 8 if args.smoke else 16
    pool = 10 if args.smoke else 16
    max_atoms = 8 if args.smoke else 10
    n_requests = 40 if args.smoke else 128
    repeats = 2 if args.smoke else 3
    graphs = _graphs(dim, pool, max_atoms)

    results = {
        "mode": "smoke" if args.smoke else "full",
        "hot_swap": bench_hot_swap(dim, graphs, n_requests),
        "adaptive": bench_adaptive(dim, graphs, n_requests, repeats),
        "memoize": bench_memoize(dim, graphs, n_requests, repeats),
    }
    results["zero_recaptures"] = results["hot_swap"]["recaptures"] == 0
    results["merge_speedup"] = results["adaptive"]["merge_speedup"]
    results["memo_speedup"] = results["memoize"]["memo_speedup"]

    out_path = args.out or (output_dir() / "BENCH_serve_live.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    hs, ad, mm = results["hot_swap"], results["adaptive"], results["memoize"]
    rows = [
        [
            "hot swap",
            f"publish {hs['publish_seconds'] * 1e3:.1f} ms",
            f"{hs['recaptures']} recaptures",
            "pinned bit-equal" if hs["pinned_bit_identical"] else "PINNED DIVERGED",
            "fresh bit-equal" if hs["fresh_bit_identical"] else "FRESH DIVERGED",
        ],
        [
            "exact tiers",
            f"{ad['exact']['structs_per_s']:.1f} structs/s",
            f"{ad['exact']['batches_per_pass']} batches "
            f"(fill {ad['exact']['mean_batch_structs']:.1f})",
            f"pad {ad['exact']['padding_overhead'] * 100:.1f}%",
            "bit-equal" if ad["exact"]["bit_identical"] else "DIVERGED",
        ],
        [
            "merged tiers",
            f"{ad['merged']['structs_per_s']:.1f} structs/s "
            f"({ad['merge_speedup']:.2f}x)",
            f"{ad['merged']['batches_per_pass']} batches "
            f"(fill {ad['merged']['mean_batch_structs']:.1f})",
            f"pad {ad['merged']['padding_overhead'] * 100:.1f}%",
            "bit-equal" if ad["merged"]["bit_identical"] else "DIVERGED",
        ],
        [
            "collate memo",
            f"{mm['on_structs_per_s']:.1f} structs/s ({mm['memo_speedup']:.2f}x)",
            f"{mm['collate_hits']} hits / {mm['collate_misses']} misses",
            f"warm hit rate {mm['warm_hit_rate'] * 100:.0f}%",
            "bit-equal",
        ],
    ]
    emit(
        "serve_live",
        format_table(
            ["scenario", "throughput / latency", "batching", "padding / cache", "vs eager"],
            rows,
            title="Serving under live fine-tuning "
            "(versioned hot-swap, adaptive merging, collate memoization)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

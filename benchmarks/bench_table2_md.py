"""Table II — one-step molecular-dynamics time, CHGNet vs FastCHGNet.

Paper (A100):

    crystal     atoms bonds angles  CHGNet  FastCHGNet  speedup
    LiMnO2          8   336    744  0.022 s    0.0077 s    2.86x
    LiTiPO5        32  1258   2292  0.021 s    0.0076 s    2.63x
    Li9Co7O16      32  1780   8376  0.023 s    0.0077 s    3.03x

Shape to reproduce: FastCHGNet's head-based inference beats the reference's
derivative-based inference by a factor in the low single digits on every
structure, with the speedup *not* strongly dependent on system size (the
paper attributes the gap to GPU under-utilization in step-by-step MD; on
this substrate it comes from skipping the force/stress backward pass).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import emit, format_table
from repro.graph import build_graph
from repro.md import ModelCalculator, MolecularDynamics
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.structures import named_structures

PAPER = {
    "LiMnO2": (8, 336, 744, 0.022, 0.0077, 2.86),
    "LiTiPO5": (32, 1258, 2292, 0.021, 0.0076, 2.63),
    "Li9Co7O16": (32, 1780, 8376, 0.023, 0.0077, 3.03),
}
_RESULTS: dict[str, dict] = {}


def _step_time(crystal, level: OptLevel, n_steps: int = 2) -> float:
    model = CHGNetModel(CHGNetConfig(opt_level=level), np.random.default_rng(2))
    md = MolecularDynamics(
        crystal, ModelCalculator(model), timestep_fs=1.0, temperature_k=300.0, seed=0
    )
    return md.time_steps(n_steps, warmup=1)


@pytest.mark.parametrize("name", list(PAPER))
def test_md_one_step(benchmark, name):
    crystal = named_structures()[name]
    graph = build_graph(crystal)

    def run():
        t_ref = _step_time(crystal, OptLevel.BASELINE)
        t_fast = _step_time(crystal, OptLevel.DECOMPOSE_FS)
        return t_ref, t_fast

    t_ref, t_fast = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = {
        "atoms": crystal.num_atoms,
        "bonds": graph.num_edges,
        "angles": graph.num_angles,
        "t_ref": t_ref,
        "t_fast": t_fast,
    }
    assert t_fast < t_ref, "FastCHGNet MD step must be faster"


def test_report_table2(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, rec in _RESULTS.items():
        p = PAPER[name]
        rows.append(
            [
                name,
                str(rec["atoms"]),
                str(rec["bonds"]),
                str(rec["angles"]),
                f"{rec['t_ref']:.3f}",
                f"{rec['t_fast']:.3f}",
                f"{rec['t_ref'] / rec['t_fast']:.2f}x",
                f"{p[5]:.2f}x",
            ]
        )
    table = format_table(
        ["crystal", "atoms", "bonds", "angles", "CHGNet (s)", "FastCHGNet (s)", "speedup", "paper speedup"],
        rows,
        title="Table II — one-step MD time (step-by-step structure processing)",
    )
    emit("table2_md", table)

    speedups = [rec["t_ref"] / rec["t_fast"] for rec in _RESULTS.values()]
    assert all(s > 1.3 for s in speedups), "low-single-digit speedup expected"
    assert all(s < 20 for s in speedups)

"""Serving fault-tolerance benchmark: graceful degradation, hedging, resume.

Exercises the fault-tolerant serving stack (ISSUE 8) end to end against
fault-free reference runs on the same request stream:

* **Kill one of four workers** — a worker dies mid-stream (discovered at
  dispatch, typed ``WorkerFailure`` before any result lands) and its
  batches transparently re-queue onto the survivors.  The run must lose
  **zero** requests, every prediction must stay ``np.array_equal`` to the
  fault-free run (the bit-identity contract is what licenses transparent
  retry), and modeled throughput (requests over the virtual-clock
  makespan) must hold at least the graceful-degradation floor — losing
  1 of 4 workers costs roughly the proportional throughput, not a stall.
* **Straggler hedging** — one worker's dispatches are skewed by a fault
  plan; a hedged engine duplicates stuck batches onto the idlest healthy
  worker and keeps the first modeled completion.  Hedged and unhedged runs
  must produce bit-equal predictions while hedging recovers latency.
* **Deadlines** — a trickle submitted with a tight deadline is shed with
  typed ``DeadlineExceeded`` once the clock passes it, instead of burning
  worker time on answers nobody awaits; requests without deadlines ride
  the same queue unharmed.
* **Farm kill-at-wave-k + resume** — a recording trajectory farm is killed
  after k waves and resumed from its ``RCKPT1`` checkpoint; the resumed
  run must finish **bit-identical** (positions/forces/energies, every
  frame) to an uninterrupted farm.

Writes ``BENCH_serve_faults.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes so the whole run takes
seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_faults.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import tempfile

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.mptrj import generate_mptrj
from repro.md import FIREConfig, MDSpec, RelaxSpec, TrajectoryFarm
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.serve import (
    DeadlineExceeded,
    InferenceEngine,
    WorkerFaultPlan,
)

WORKLOADS = {
    "medium": {
        "requests": 48,
        "structures": 8,
        "max_atoms": 6,
        "batch_structs": 4,
        "workers": 4,
        "dim": 8,
        "farm_trajectories": 4,
        "farm_steps": 6,
        "kill_wave": 3,
    },
    "large": {
        "requests": 128,
        "structures": 16,
        "max_atoms": 10,
        "batch_structs": 8,
        "workers": 4,
        "dim": 16,
        "farm_trajectories": 8,
        "farm_steps": 10,
        "kill_wave": 4,
    },
}

#: Losing 1 of 4 workers ideally holds ~0.75x modeled throughput (plus one
#: re-evaluated batch); 0.6 leaves headroom for service-time noise while
#: still rejecting any stall-like regression.
DEGRADATION_FLOOR = 0.6


def _model(dim: int) -> CHGNetModel:
    model = CHGNetModel(
        CHGNetConfig(
            atom_fea_dim=dim,
            bond_fea_dim=dim,
            angle_fea_dim=dim,
            num_radial=5,
            angular_order=2,
            hidden_dim=dim,
            opt_level=OptLevel.DECOMPOSE_FS,
        ),
        np.random.default_rng(1),
    )
    # Un-zero the zero-initialized readout heads so bitwise-equality checks
    # compare real (non-zero) energies/forces.
    rng = np.random.default_rng(7)
    for p in model.parameters():
        p.data += rng.normal(scale=0.05, size=p.data.shape)
    return model


def _stream(workload: dict) -> list:
    pool = generate_mptrj(
        workload["structures"], seed=3, max_atoms=workload["max_atoms"]
    )
    return [
        pool[i % len(pool)].crystal.perturbed(np.random.default_rng(50 + i), 0.02)
        for i in range(workload["requests"])
    ]


def _engine(model: CHGNetModel, workload: dict, **kwargs) -> InferenceEngine:
    return InferenceEngine(
        model,
        n_workers=workload["workers"],
        max_batch_structs=workload["batch_structs"],
        max_programs=64,
        **kwargs,
    )


def _bit_equal(a, b) -> bool:
    return all(
        x.energy == y.energy
        and np.array_equal(x.forces, y.forces)
        and np.array_equal(x.stress, y.stress)
        and np.array_equal(x.magmom, y.magmom)
        for x, y in zip(a, b)
    )


def _farm_specs(model: CHGNetModel, workload: dict) -> list:
    pool = generate_mptrj(
        workload["farm_trajectories"], seed=5, max_atoms=workload["max_atoms"]
    )
    specs = []
    for i in range(workload["farm_trajectories"]):
        crystal = pool[i % len(pool)].crystal.perturbed(
            np.random.default_rng(200 + i), 0.03
        )
        if i % 2 == 0:
            specs.append(
                MDSpec(
                    crystal,
                    workload["farm_steps"],
                    temperature_k=300.0,
                    seed=i,
                    rescale_every=3,
                )
            )
        else:
            # Tolerance far below a random-weight model's reach: the relax
            # runs its full budget, so the kill lands mid-trajectory.
            specs.append(
                RelaxSpec(
                    crystal, FIREConfig(fmax=1e-6, max_steps=workload["farm_steps"])
                )
            )
    return specs


def _farm_engine(model: CHGNetModel, workload: dict) -> InferenceEngine:
    return InferenceEngine(
        model,
        n_workers=2,
        max_batch_structs=workload["batch_structs"],
        max_programs=256,
    )


def _frames_identical(a, b) -> bool:
    return all(
        ra.steps == rb.steps
        and ra.energy == rb.energy
        and ra.fmax == rb.fmax
        and np.array_equal(ra.crystal.frac_coords, rb.crystal.frac_coords)
        and len(ra.frames) == len(rb.frames)
        and all(
            np.array_equal(fa.positions, fb.positions)
            and np.array_equal(fa.forces, fb.forces)
            and fa.energy == fb.energy
            for fa, fb in zip(ra.frames, rb.frames)
        )
        for ra, rb in zip(a.results, b.results)
    )


def bench_workload(name: str, workload: dict, tmpdir: str) -> dict:
    model = _model(workload["dim"])
    stream = _stream(workload)
    n = len(stream)

    # Fault-free reference: the bit-identity oracle and throughput baseline.
    reference = _engine(model, workload)
    ref_preds = reference.predict_many(stream)
    ref_throughput = n / reference.makespan()

    # Kill 1 of workers mid-stream: zero lost requests, bit-equal output,
    # graceful throughput degradation on the modeled clock.
    kill_plan = WorkerFaultPlan().kill(worker=1, dispatch=1)
    killed = _engine(model, workload, fault_plan=kill_plan)
    kill_preds = killed.predict_many(stream)
    kill_throughput = n / killed.makespan()
    kill_stats = killed.snapshot()

    # Straggler hedging: same skew plan, hedged vs unhedged, bit-equal.
    straggle = dict(worker=0, seconds=0.2)
    unhedged = _engine(
        model, workload, fault_plan=WorkerFaultPlan().straggle(**straggle)
    )
    unhedged_preds = unhedged.predict_many(stream)
    hedged = _engine(
        model, workload, fault_plan=WorkerFaultPlan().straggle(**straggle), hedge=True
    )
    hedged_preds = hedged.predict_many(stream)
    hedged_stats = hedged.snapshot()

    # Deadlines: a partial-tier trickle expires before its deadline flush;
    # deadline-free requests on the same queue are unaffected.
    dl = _engine(model, workload, max_wait=0.5)
    expiring = [
        dl.submit(stream[i], now=0.0, deadline=0.01)
        for i in range(workload["batch_structs"] - 1)
    ]
    kept = dl.submit(stream[-1], now=0.0)
    dl.flush(now=1.0)
    misses = 0
    for request_id in expiring:
        try:
            dl.poll(request_id)
        except DeadlineExceeded:
            misses += 1
    kept_served = dl.poll(kept) is not None

    # Farm crash: kill at wave k, resume from the RCKPT1 checkpoint, finish
    # bit-identical to the uninterrupted run.
    specs = _farm_specs(model, workload)
    uninterrupted = TrajectoryFarm(_farm_engine(model, workload), record=True)
    for spec in specs:
        uninterrupted.add(spec)
    farm_reference = uninterrupted.run()

    ckpt = f"{tmpdir}/{name}_farm.rckpt"
    crashed = TrajectoryFarm(_farm_engine(model, workload), record=True)
    for spec in specs:
        crashed.add(spec)
    crashed.run(max_waves=workload["kill_wave"], checkpoint_path=ckpt)
    del crashed  # the crash: all in-memory state is gone
    resumed_farm = TrajectoryFarm.resume(ckpt, _farm_engine(model, workload))
    farm_resumed = resumed_farm.run()

    return {
        "workload": name,
        "workers": workload["workers"],
        "requests": n,
        "kill_zero_lost": len(kill_preds) == n,
        "kill_bit_identical": _bit_equal(ref_preds, kill_preds),
        "kill_throughput_ratio": kill_throughput / ref_throughput,
        "kill_worker_failures": kill_stats["worker_failures"],
        "kill_retries": kill_stats["retries"],
        "kill_plan_unfired": kill_plan.unfired(),
        "hedge_bit_identical": _bit_equal(unhedged_preds, hedged_preds),
        "hedges": hedged_stats["hedges"],
        "hedge_wins": hedged_stats["hedge_wins"],
        "hedge_p95_ratio": hedged_stats["latency_p95"]
        / max(unhedged.snapshot()["latency_p95"], 1e-12),
        "deadline_misses": misses,
        "deadline_stat": dl.snapshot()["deadline_misses"],
        "deadline_free_served": kept_served,
        "farm_waves_before_kill": workload["kill_wave"],
        "farm_resume_identical": _frames_identical(farm_reference, farm_resumed),
        "farm_total_waves": farm_resumed.stats.waves,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    names = ["medium"] if args.smoke else ["medium", "large"]
    with tempfile.TemporaryDirectory() as tmpdir:
        results = {
            "mode": "smoke" if args.smoke else "full",
            "degradation_floor": DEGRADATION_FLOOR,
            "workloads": {
                name: bench_workload(name, WORKLOADS[name], tmpdir) for name in names
            },
        }
    medium = results["workloads"]["medium"]
    results["medium_kill_bit_identical"] = medium["kill_bit_identical"]
    results["medium_kill_throughput_ratio"] = medium["kill_throughput_ratio"]
    results["medium_farm_resume_identical"] = medium["farm_resume_identical"]

    out_path = args.out or (output_dir() / "BENCH_serve_faults.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    rows = [
        [
            r["workload"],
            f"{r['workers'] - 1}/{r['workers']}",
            "0 lost" if r["kill_zero_lost"] else "LOST",
            "bit-equal" if r["kill_bit_identical"] else "DIVERGED",
            f"{r['kill_throughput_ratio']:.2f}x",
            f"{r['hedges']} ({r['hedge_wins']} won)",
            "bit-equal" if r["hedge_bit_identical"] else "DIVERGED",
            str(r["deadline_misses"]),
            "bit-equal" if r["farm_resume_identical"] else "DIVERGED",
        ]
        for r in results["workloads"].values()
    ]
    emit(
        "serve_faults",
        format_table(
            [
                "workload",
                "survivors",
                "kill requests",
                "kill oracle",
                "throughput kept",
                "hedges",
                "hedge oracle",
                "deadline misses",
                "farm resume",
            ],
            rows,
            title="Fault-tolerant serving (worker kills, hedging, deadlines, farm resume)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

"""Ablation — interaction-block dependency elimination (Eq. 10 vs Eq. 11).

The paper claims breaking the v->e->a update chain "does not affect
accuracy" while enabling concurrent updates and GatedMLP packing.  This
bench trains two otherwise-identical models — reference wiring
(PARALLEL_BASIS level) vs dependency-eliminated wiring (FUSED level) — from
the same initial weights on the same data, and compares training loss and
test MAEs.

Shape to reproduce: the two runs converge to the same accuracy regime
(final losses within a small factor of each other).
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.workloads import scaled, training_splits
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.train import TrainConfig, Trainer, evaluate


def _train(level: OptLevel, state: dict) -> tuple[list[float], object]:
    splits = training_splits()
    model = CHGNetModel(CHGNetConfig(opt_level=level), np.random.default_rng(0))
    model.load_state_dict(state)
    trainer = Trainer(
        model,
        splits.train,
        config=TrainConfig(epochs=scaled(4, minimum=3), batch_size=8, learning_rate=1e-3),
    )
    history = trainer.train()
    result, _ = evaluate(model, splits.test)
    return [r.train_loss for r in history], result


def test_ablation_dependency_elimination(benchmark):
    # identical initial weights for both wirings (shared parameter layout)
    init = CHGNetModel(
        CHGNetConfig(opt_level=OptLevel.PARALLEL_BASIS), np.random.default_rng(0)
    ).state_dict()

    def run():
        ref = _train(OptLevel.PARALLEL_BASIS, init)  # Eq. 10 wiring
        elim = _train(OptLevel.FUSED, init)  # Eq. 11 wiring (+ packing)
        return ref, elim

    (ref_losses, ref_eval), (elim_losses, elim_eval) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    table = format_table(
        ["wiring", "final train loss", "E MAE (meV/atom)", "F MAE (meV/A)"],
        [
            [
                "Eq. 10 (reference deps)",
                f"{ref_losses[-1]:.4f}",
                f"{ref_eval.energy_mae * 1e3:.1f}",
                f"{ref_eval.force_mae * 1e3:.1f}",
            ],
            [
                "Eq. 11 (dependency eliminated)",
                f"{elim_losses[-1]:.4f}",
                f"{elim_eval.energy_mae * 1e3:.1f}",
                f"{elim_eval.force_mae * 1e3:.1f}",
            ],
        ],
        title="Ablation — dependency elimination does not affect accuracy",
    )
    emit("ablation_dependency", table)

    # Same accuracy regime: final losses within 1.5x of each other and both
    # strictly improving over their starting loss.
    assert elim_losses[-1] < 1.5 * ref_losses[-1] + 1e-6
    assert ref_losses[-1] < 1.5 * elim_losses[-1] + 1e-6
    # training makes (noise-tolerant) progress under both wirings
    assert ref_losses[-1] < 1.2 * ref_losses[0]
    assert elim_losses[-1] < 1.2 * elim_losses[0]

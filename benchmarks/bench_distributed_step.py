"""Distributed-step benchmark: eager ranks vs compiled per-rank replay.

Measures the compiled distributed path (ISSUE 3) end to end — per-rank
:class:`~repro.tensor.compile.StepCompiler` replay over bucket-sampled,
tier-padded shards with the liveness-ordered bucketed gradient flush —
against the fully eager distributed trainer on the same datasets:

* ``medium`` — the headline workload: training-shaped shards where tape
  bookkeeping dominates and replay pays off most;
* ``large`` — bigger graphs where NumPy kernel time dominates; reported as
  the honest bound of replay gains on this substrate.

Per workload the benchmark reports the distributed step throughput (eager
vs compiled, whole synchronized step including flush + optimizer), the
padding waste of the sampler's planned tier shapes, the capture/recompile
count against the warm-started tier budget, the modeled exposed-comm
fraction of the bucketed flush, and a bitwise-equality check: a compiled
run (with validating replays) against an eager run through the identical
padded pipeline must produce bit-equal replica weights and step losses.

Writes ``BENCH_distributed_step.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks sizes/repeats so the whole run
takes seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed_step.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.comm import ClusterSpec
from repro.data.dataset import StructureDataset
from repro.data.mptrj import generate_mptrj
from repro.graph.batching import workload_cost
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.train import DistributedConfig, DistributedTrainer

WORKLOADS = {
    "medium": {
        "structures": 16,
        "max_atoms": 4,
        "global_batch": 8,
        "world_size": 2,
        "dim": 8,
    },
    "large": {
        "structures": 16,
        "max_atoms": 8,
        "global_batch": 8,
        "world_size": 4,
        "dim": 16,
    },
}


def _config(dim: int) -> CHGNetConfig:
    return CHGNetConfig(
        atom_fea_dim=dim,
        bond_fea_dim=dim,
        angle_fea_dim=dim,
        num_radial=7,
        angular_order=3,
        hidden_dim=dim,
    )


def _factory(dim: int):
    return lambda: CHGNetModel(
        _config(dim).with_level(OptLevel.DECOMPOSE_FS), np.random.default_rng(1)
    )


def _dist_config(workload: dict, **overrides) -> DistributedConfig:
    base = dict(
        world_size=workload["world_size"],
        global_batch_size=workload["global_batch"],
        epochs=2,
        learning_rate=1e-4,
        seed=0,
    )
    base.update(overrides)
    return DistributedConfig(**base)


def _steps_per_s(step_fn, n_steps: int) -> float:
    best = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        for _ in range(n_steps):
            step_fn()
        best = min(best, (time.perf_counter() - t0) / n_steps)
    return 1.0 / best


def _padding_waste(trainer: DistributedTrainer) -> float:
    """Ghost-row share of the padded workload over one epoch of shards."""
    padded_total = 0
    real_total = 0
    for shards in trainer.loader:
        for batch in shards:
            dims = (
                batch.num_atoms,
                batch.num_edges,
                batch.num_short_edges,
                batch.num_angles,
            )
            padded_total += workload_cost(*dims)
            pi = batch.pad_info
            real = dims if pi is None else (
                pi.num_atoms,
                pi.num_edges,
                pi.num_short_edges,
                pi.num_angles,
            )
            real_total += workload_cost(*real)
    if padded_total == 0:
        return 0.0
    return 1.0 - real_total / padded_total


def _bitwise_check(ds: StructureDataset, workload: dict) -> bool:
    """Compiled (validating) vs eager on the identical padded pipeline."""
    factory = _factory(workload["dim"])
    compiled = DistributedTrainer(
        factory, ds, _dist_config(workload, compile=True, validate_replay=True)
    )
    compiled.train()
    eager = DistributedTrainer(
        factory,
        ds,
        _dist_config(
            workload,
            compile=False,
            bucket_sampler=True,
            pad_shards=True,
            memoize_shards=True,
        ),
    )
    eager.train()
    state_c = compiled.model.state_dict()
    state_e = eager.model.state_dict()
    weights_equal = all(np.array_equal(state_c[k], state_e[k]) for k in state_c)
    losses_equal = all(
        a.loss == b.loss for a, b in zip(compiled.steps, eager.steps)
    )
    return (
        weights_equal
        and losses_equal
        and compiled.replicas_in_sync()
        and eager.replicas_in_sync()
    )


def bench_workload(name: str, workload: dict, n_steps: int) -> dict:
    entries = generate_mptrj(
        workload["structures"], seed=3, max_atoms=workload["max_atoms"]
    )
    ds = StructureDataset(entries, memoize_batches=True)
    factory = _factory(workload["dim"])

    bitwise_equal = _bitwise_check(ds, workload)

    eager = DistributedTrainer(factory, ds, _dist_config(workload, compile=False))
    eager_shards = next(iter(eager.loader))
    eager.train_step(eager_shards)  # warm
    eager_sps = _steps_per_s(lambda: eager.train_step(eager_shards), n_steps)

    compiled = DistributedTrainer(factory, ds, _dist_config(workload, compile=True))
    shards = next(iter(compiled.loader))
    compiled.train_step(shards)  # capture
    compiled.train_step(shards)  # warm replay
    compiled_sps = _steps_per_s(lambda: compiled.train_step(shards), n_steps)

    # Recompile budget: one epoch over every block; captures must not exceed
    # the warm-started tier count per rank.
    budget_trainer = DistributedTrainer(factory, ds, _dist_config(workload, compile=True))
    budget_trainer.train()
    stats = budget_trainer.compile_stats()
    n_tiers = len(budget_trainer.sampler.tier_targets)
    tier_budget = n_tiers * workload["world_size"]

    overlap = budget_trainer.modeled_overlap(ClusterSpec())
    exposed_frac = (
        overlap.exposed_comm / overlap.total_time if overlap.total_time > 0 else 0.0
    )
    return {
        "workload": name,
        "world_size": workload["world_size"],
        "eager_steps_per_s": eager_sps,
        "compiled_steps_per_s": compiled_sps,
        "speedup": compiled_sps / eager_sps,
        "padding_waste": _padding_waste(budget_trainer),
        "captures": stats["captures"],
        "replays": stats["replays"],
        "eager_fallbacks": stats["eager_fallbacks"],
        "warm_tiers": n_tiers,
        "tier_budget": tier_budget,
        "within_tier_budget": stats["captures"] <= tier_budget,
        "exposed_comm_fraction": exposed_frac,
        "bitwise_equal": bitwise_equal,
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    names = ["medium"] if args.smoke else ["medium", "large"]
    n_steps = 3 if args.smoke else 10
    results = {
        "mode": "smoke" if args.smoke else "full",
        "workloads": {
            name: bench_workload(name, WORKLOADS[name], n_steps) for name in names
        },
    }
    medium = results["workloads"]["medium"]
    results["medium_speedup"] = medium["speedup"]
    results["medium_bitwise_equal"] = medium["bitwise_equal"]

    out_path = args.out or (output_dir() / "BENCH_distributed_step.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    rows = [
        [
            r["workload"],
            str(r["world_size"]),
            f"{r['eager_steps_per_s']:.2f}",
            f"{r['compiled_steps_per_s']:.2f}",
            f"{r['speedup']:.2f}x",
            f"{r['padding_waste'] * 100:.1f}%",
            f"{r['captures']}/{r['tier_budget']}",
            f"{r['exposed_comm_fraction'] * 100:.2f}%",
            "bit-equal" if r["bitwise_equal"] else "DIVERGED",
        ]
        for r in results["workloads"].values()
    ]
    emit(
        "distributed_step",
        format_table(
            [
                "workload",
                "ranks",
                "eager steps/s",
                "compiled steps/s",
                "speedup",
                "pad waste",
                "captures/budget",
                "exposed comm",
                "replay check",
            ],
            rows,
            title="Compiled distributed training step (per-rank replay + bucketed flush)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

"""Fig. 6 — large-batch convergence: default LR vs the Eq. 14 scaling rule.

Paper: at global batch 2048 the default LR (3e-4) under-updates and
converges to E/F/S/M = 24 meV/atom / 90 meV/A / 0.543 GPa / 48 m-muB; the
scaled LR (Eq. 14) reaches 15 / 72 / 0.476 / 35.

Scaled-down reproduction: "large batch" is 32 with the scaling anchor k
chosen so the small-batch regime (k = 8) plays the role the paper's k = 128
plays against batch 2048 — scaled LR = (32/8) * 3e-4 = 1.2e-3 vs default
3e-4.  Shape to reproduce: the scaled-LR run converges to lower MAEs on
every property.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.workloads import scaled, training_splits
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.train import TrainConfig, Trainer
from repro.train.schedule import scaled_learning_rate

LARGE_BATCH = 32
SCALE_K = 8  # the paper's k=128, re-anchored to this substrate's batch sizes


def _run(lr: float) -> list[dict]:
    splits = training_splits()
    model = CHGNetModel(
        CHGNetConfig(opt_level=OptLevel.DECOMPOSE_FS), np.random.default_rng(3)
    )
    trainer = Trainer(
        model,
        splits.train,
        config=TrainConfig(
            epochs=scaled(6, minimum=3), batch_size=LARGE_BATCH, learning_rate=lr, seed=0
        ),
    )
    history = trainer.train()
    return [
        {
            "epoch": r.epoch,
            "energy": r.train_energy_mae,
            "force": r.train_force_mae,
            "stress": r.train_stress_mae,
            "magmom": r.train_magmom_mae,
        }
        for r in history
    ]


def test_fig6_lr_scaling(benchmark):
    default_lr = 3e-4
    scaled_lr = scaled_learning_rate(LARGE_BATCH, k=SCALE_K)

    def run_both():
        return _run(default_lr), _run(scaled_lr)

    hist_default, hist_scaled = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, hist in (("default LR (red)", hist_default), (f"scaled LR={scaled_lr:.1e} (blue)", hist_scaled)):
        last = hist[-1]
        rows.append(
            [
                label,
                f"{last['energy'] * 1e3:.1f}",
                f"{last['force'] * 1e3:.1f}",
                f"{last['stress']:.4f}",
                f"{last['magmom'] * 1e3:.0f}",
            ]
        )
    table = format_table(
        ["run", "Energy (meV/atom)", "Force (meV/A)", "Stress", "Magmom (m-muB)"],
        rows,
        title=(
            "Fig. 6 — large-batch convergence after final epoch "
            "(paper: default 24/90/0.543/48 vs scaled 15/72/0.476/35)"
        ),
    )
    series = ["\nper-epoch energy MAE (meV/atom):", "epoch  default  scaled"]
    for d, s in zip(hist_default, hist_scaled):
        series.append(f"{d['epoch']:5d}  {d['energy'] * 1e3:7.1f}  {s['energy'] * 1e3:7.1f}")
    emit("fig6_lr_scaling", table + "\n```" + "\n".join(series) + "\n```")

    # Shape: the scaled learning rate converges to a lower energy and
    # force MAE than the default LR at large batch (the paper's claim).
    assert hist_scaled[-1]["energy"] < hist_default[-1]["energy"]
    assert hist_scaled[-1]["force"] <= hist_default[-1]["force"] * 1.1

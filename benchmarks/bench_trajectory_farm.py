"""Trajectory-farm benchmark: lockstep waves vs the sequential eager loop.

Measures the ISSUE-7 batched-iterative-workload path end to end: a mixed
pool of FIRE relaxations and NVT MD runs advanced in lockstep waves
through :meth:`InferenceEngine.predict_wave` (tiered micro-batching,
compiled-program replay, per-trajectory Verlet skin caches with
incremental angle updates) against the baseline every prior PR ran —
one eager ``calculator.calculate`` per structure per step.

Both sides record every frame; the farm must be **bit-identical** to the
sequential loop on positions, forces and energies at every step of every
trajectory (``np.array_equal``, not allclose), and at least ``2x`` faster
in structure-steps/s.  Also reports the neighbor-cache hit rate, the
angle reuse/diff/rebuild split and the engine's program-cache hit rate.

Writes ``BENCH_trajectory_farm.json`` (and a markdown table) under
``benchmarks/out/``.  ``--smoke`` shrinks the farm so the whole run takes
seconds; the tier-1 suite executes that mode end-to-end.

Usage::

    PYTHONPATH=src python benchmarks/bench_trajectory_farm.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import emit, format_table, output_dir
from repro.data.mptrj import generate_mptrj
from repro.md import (
    FIREConfig,
    MDSpec,
    ModelCalculator,
    RelaxSpec,
    TrajectoryFarm,
    run_sequential,
)
from repro.model import CHGNetConfig, CHGNetModel, OptLevel
from repro.serve import InferenceEngine


def _config(dim: int) -> CHGNetConfig:
    return CHGNetConfig(
        atom_fea_dim=dim,
        bond_fea_dim=dim,
        angle_fea_dim=dim,
        num_radial=5,
        angular_order=2,
        hidden_dim=dim,
        opt_level=OptLevel.DECOMPOSE_FS,
    )


def _model(dim: int) -> CHGNetModel:
    model = CHGNetModel(_config(dim), np.random.default_rng(1))
    # Un-zero the zero-initialized readout heads so bitwise-equality checks
    # compare real (non-zero) energies/forces and FIRE has forces to follow.
    rng = np.random.default_rng(7)
    for p in model.parameters():
        p.data += rng.normal(scale=0.05, size=p.data.shape)
    return model


def _specs(n_trajectories: int, pool: int, max_atoms: int, n_steps: int) -> list:
    """Mixed workload: half NVT MD, half FIRE relaxations.

    The relaxations use a tolerance far below what a random-weight model
    can reach, so they run their full ``max_steps`` budget — the bench
    measures steady-state stepping throughput, not early convergence.
    """
    entries = generate_mptrj(pool, seed=3, max_atoms=max_atoms)
    fire = FIREConfig(fmax=1e-6, max_steps=n_steps)
    specs = []
    for i in range(n_trajectories):
        crystal = entries[i % pool].crystal.perturbed(
            np.random.default_rng(100 + i), 0.03
        )
        if i % 2 == 0:
            specs.append(
                MDSpec(crystal, n_steps, temperature_k=300.0, seed=i, rescale_every=5)
            )
        else:
            specs.append(RelaxSpec(crystal, fire))
    return specs


def _frames_equal(a, b) -> bool:
    return (
        a.steps == b.steps
        and len(a.frames) == len(b.frames)
        and all(
            np.array_equal(fa.positions, fb.positions)
            and np.array_equal(fa.forces, fb.forces)
            and fa.energy == fb.energy
            for fa, fb in zip(a.frames, b.frames)
        )
    )


def bench_farm(
    dim: int, n_trajectories: int, pool: int, max_atoms: int, n_steps: int
) -> dict:
    model = _model(dim)
    specs = _specs(n_trajectories, pool, max_atoms, n_steps)

    # Shrinking waves visit many distinct group sizes — each one a program
    # signature — so the cache needs headroom far beyond the default 16.
    engine = InferenceEngine(
        model, n_workers=2, compile=True, max_batch_structs=8, max_programs=256
    )
    farm = TrajectoryFarm(engine, skin=1.0, record=True)
    for spec in specs:
        farm.add(spec)
    t0 = time.perf_counter()
    farmed = farm.run()
    farm_wall = time.perf_counter() - t0
    stats = farmed.stats

    # The baseline of every prior PR: one eager single-point per structure
    # per step, graph rebuilt from scratch each call.
    calc = ModelCalculator(model)
    t0 = time.perf_counter()
    solo = run_sequential(specs, calc, record=True)
    base_wall = time.perf_counter() - t0

    identical = all(_frames_equal(f, s) for f, s in zip(farmed.results, solo))
    steps = stats.structure_steps
    snap = engine.snapshot()
    diff = stats.diff
    angle_events = diff.angle_reuses + diff.angle_diffs + diff.angle_rebuilds
    return {
        "trajectories": n_trajectories,
        "md_steps": n_steps,
        "structure_steps": steps,
        "farm_seconds": farm_wall,
        "sequential_seconds": base_wall,
        "farm_steps_per_s": steps / farm_wall,
        "sequential_steps_per_s": steps / base_wall,
        "speedup": base_wall / farm_wall,
        "bit_identical": identical,
        "waves": stats.waves,
        "first_wave": stats.wave_sizes[0],
        "last_wave": stats.wave_sizes[-1],
        "evaluations": stats.evaluations,
        "neighbor_builds": stats.neighbor_builds,
        "neighbor_reuses": stats.neighbor_reuses,
        "neighbor_hit_rate": stats.neighbor_reuses
        / max(1, stats.neighbor_builds + stats.neighbor_reuses),
        "angle_reuses": diff.angle_reuses,
        "angle_diffs": diff.angle_diffs,
        "angle_rebuilds": diff.angle_rebuilds,
        "angle_incremental_rate": (diff.angle_reuses + diff.angle_diffs)
        / max(1, angle_events),
        "program_replays": snap["replays"],
        "program_captures": snap["captures"],
        "program_hit_rate": snap["hit_rate"],
    }


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-long run")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)

    dim = 8
    n_trajectories = 12 if args.smoke else 64
    pool = 6 if args.smoke else 16
    max_atoms = 6
    n_steps = 6 if args.smoke else 12

    results = {
        "mode": "smoke" if args.smoke else "full",
        "farm": bench_farm(dim, n_trajectories, pool, max_atoms, n_steps),
    }
    results["speedup"] = results["farm"]["speedup"]
    results["bit_identical"] = results["farm"]["bit_identical"]

    out_path = args.out or (output_dir() / "BENCH_trajectory_farm.json")
    with open(out_path, "w") as fh:
        json.dump(results, fh, indent=2)

    f = results["farm"]
    rows = [
        [
            "sequential eager",
            f"{f['sequential_steps_per_s']:.1f} steps/s",
            f"{f['structure_steps']} single-points",
            "full rebuild each step",
            "(reference)",
        ],
        [
            "trajectory farm",
            f"{f['farm_steps_per_s']:.1f} steps/s ({f['speedup']:.2f}x)",
            f"{f['waves']} waves ({f['first_wave']} -> {f['last_wave']})",
            f"nbr hit {f['neighbor_hit_rate'] * 100:.0f}%, "
            f"angle incr {f['angle_incremental_rate'] * 100:.0f}%, "
            f"prog hit {f['program_hit_rate'] * 100:.0f}%",
            "bit-identical" if f["bit_identical"] else "DIVERGED",
        ],
    ]
    emit(
        "trajectory_farm",
        format_table(
            ["driver", "throughput", "batching", "reuse", "vs solo"],
            rows,
            title=f"Batched iterative workloads ({f['trajectories']} mixed "
            "relax/MD trajectories, lockstep waves vs per-structure eager)",
        ),
    )
    print(f"wrote {out_path}")
    return results


if __name__ == "__main__":
    main()

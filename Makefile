# Test tiers.
#
# `make test` is tier 1 — the full suite, the command CI and the
# acceptance gate run.  `make quicktest` skips tests marked `slow`
# (bench smoke runs and hypothesis-heavy property suites; see
# pytest.ini) for a fast inner-loop signal.

PYTEST = PYTHONPATH=src python -m pytest -x -q

.PHONY: test quicktest

test:
	$(PYTEST)

quicktest:
	$(PYTEST) -m "not slow"
